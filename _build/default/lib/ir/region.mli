(** Regions: rectangular index sets.

    A region [R = [l1..h1, ..., lr..hr]] names the set of r-dimensional
    indices over which a normalized array statement computes (paper
    §2.1).  Bounds are inclusive and concrete (the frontend resolves
    [config] parameters before lowering). *)

type range = { lo : int; hi : int }
(** One dimension's inclusive bounds.  Empty when [hi < lo]. *)

type t = range array

val of_bounds : (int * int) list -> t
(** [of_bounds [(l1,h1);...]] builds a region; raises
    [Invalid_argument] on an empty list. *)

val rank : t -> int

val range : t -> int -> range
(** [range r i] is dimension [i] (1-indexed). *)

val extent : t -> int -> int
(** [extent r i] is the number of indices along dimension [i]
    (0 when empty). *)

val volume : t -> int
(** Total number of index points. *)

val is_empty : t -> bool

val equal : t -> t -> bool

val shift : t -> Support.Vec.t -> t
(** [shift r d] is the region translated by offset [d]: the indices
    touched by a reference [A@d] executed over [r]. *)

val contains : t -> t -> bool
(** [contains outer inner] holds iff every index of [inner] lies in
    [outer].  An empty [inner] is contained in anything. *)

val contains_point : t -> int array -> bool

val inter : t -> t -> t option
(** Intersection, or [None] when empty. *)

val iter : t -> (int array -> unit) -> unit
(** Iterate over all index points in row-major order.  The index array
    passed to the callback is reused between calls. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
