(** Normalized array statements (paper §2.1).

    [[R] X@d0 := f(A1@d1, ..., As@ds)] — an elementwise operation whose
    extent is the region [R]; every array is referenced at a constant
    offset from the region's index.  Normal-form conditions:
    {ol
    {- the written array is not also read (the frontend inserts a
       compiler temporary otherwise);}
    {- all arrays have the region's rank;}
    {- all subscripts are constant offsets (implied by representation).}} *)

type t = {
  region : Region.t;
  lhs : string;  (** array written *)
  lhs_off : Support.Vec.t;  (** write offset; null for almost all statements *)
  rhs : Expr.t;
}

val make : region:Region.t -> lhs:string -> ?lhs_off:Support.Vec.t -> Expr.t -> t
(** Builds a statement and validates normal form; raises
    [Invalid_argument] when the statement reads its own left-hand side
    or mixes ranks. *)

val validate : t -> (unit, string) result
(** Explains the first normal-form violation, if any. *)

val arrays : t -> string list
(** Distinct arrays referenced (lhs first). *)

val reads_of : t -> string -> Support.Vec.t list
(** Offsets at which the statement reads the given array (with
    duplicates, for reference weighting). *)

val writes_of : t -> string -> Support.Vec.t list
(** Offsets at which the statement writes the given array ([[]] or a
    singleton). *)

val ref_count : t -> string -> int
(** Number of textual references (reads + writes) to the array. *)

val rename : (string -> string) -> t -> t
(** Rename arrays throughout (used when inserting temporaries). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
