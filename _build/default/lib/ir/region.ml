type range = { lo : int; hi : int }
type t = range array

let of_bounds = function
  | [] -> invalid_arg "Region.of_bounds: rank-0 region"
  | bs -> Array.of_list (List.map (fun (lo, hi) -> { lo; hi }) bs)

let rank = Array.length
let range r i = r.(i - 1)
let extent r i =
  let { lo; hi } = r.(i - 1) in
  if hi < lo then 0 else hi - lo + 1

let volume r =
  Array.fold_left (fun acc { lo; hi } -> acc * max 0 (hi - lo + 1)) 1 r

let is_empty r = Array.exists (fun { lo; hi } -> hi < lo) r
let equal (a : t) (b : t) = a = b

let shift r d =
  if Support.Vec.rank d <> Array.length r then
    invalid_arg "Region.shift: rank mismatch";
  Array.mapi (fun i { lo; hi } -> { lo = lo + d.(i); hi = hi + d.(i) }) r

let contains outer inner =
  Array.length outer = Array.length inner
  && (is_empty inner
     || Array.for_all2
          (fun o i -> o.lo <= i.lo && i.hi <= o.hi)
          outer inner)

let contains_point r p =
  Array.length r = Array.length p
  && Array.for_all2 (fun { lo; hi } x -> lo <= x && x <= hi) r p

let inter a b =
  if Array.length a <> Array.length b then
    invalid_arg "Region.inter: rank mismatch";
  let r =
    Array.map2 (fun x y -> { lo = max x.lo y.lo; hi = min x.hi y.hi }) a b
  in
  if is_empty r then None else Some r

let iter r f =
  if not (is_empty r) then begin
    let n = Array.length r in
    let idx = Array.map (fun { lo; _ } -> lo) r in
    let rec go d =
      if d = n then f idx
      else
        let { lo; hi } = r.(d) in
        for v = lo to hi do
          idx.(d) <- v;
          go (d + 1)
        done
    in
    go 0
  end

let pp ppf r =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       (fun ppf { lo; hi } -> Format.fprintf ppf "%d..%d" lo hi))
    (Array.to_list r)

let to_string r = Format.asprintf "%a" pp r
