(** Loop structure vectors (Definition 4) and FIND-LOOP-STRUCTURE
    (paper Figure 4).

    A loop structure vector [p] is a permutation of [(±1, ±2, ..., ±n)]:
    loop [i] (1 = outermost) iterates over array dimension [|p_i|] in
    the direction of the sign of [p_i].  A constrained distance vector
    is recovered from an unconstrained one by
    [d_i = sign(p_i) · u_{|p_i|}] — e.g. with [p = (-2,-1)] the UDVs
    [(-1,0)] and [(1,-1)] of the paper's Figure 2 constrain to [(0,1)]
    and [(1,-1)], both lexicographically nonnegative. *)

type t = Support.Vec.t

val default : int -> t
(** [(1, 2, ..., n)]: the canonical row-major structure chosen for
    unconstrained nests. *)

val is_wellformed : t -> bool
(** A permutation of [±1 .. ±n]. *)

val constrain : t -> Support.Vec.t -> Support.Vec.t
(** [constrain p u] is the constrained distance vector of [u] under
    loop structure [p]. *)

val preserves : t -> Support.Vec.t list -> bool
(** All UDVs constrain to lexicographically nonnegative vectors, i.e.
    the loop nest preserves every dependence (same-iteration null
    vectors are resolved separately by statement order). *)

val find : rank:int -> Support.Vec.t list -> t option
(** FIND-LOOP-STRUCTURE.  Returns a legal loop structure vector for
    the given intra-cluster UDVs, or [None] (the paper's NOSOLUTION).
    Loops are assigned outermost-first; dimensions are tried in
    ascending order so inner loops receive higher dimensions, which
    exploits spatial locality under row-major allocation.  O(n²·e). *)

val pp : Format.formatter -> t -> unit
