lib/core/asdg.ml: Array Dep Format Hashtbl Ir List
