lib/core/partition.ml: Array Asdg Dep Format Hashtbl Ir List Loopstruct Support
