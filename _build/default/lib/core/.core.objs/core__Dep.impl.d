lib/core/dep.ml: Format Hashtbl Ir List Nstmt Region Support
