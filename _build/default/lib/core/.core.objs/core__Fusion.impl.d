lib/core/fusion.ml: Asdg List Partition Weights
