lib/core/fusion.mli: Asdg Partition
