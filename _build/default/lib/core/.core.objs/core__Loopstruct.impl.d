lib/core/loopstruct.ml: Array List Support
