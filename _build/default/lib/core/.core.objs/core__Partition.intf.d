lib/core/partition.mli: Asdg Format Loopstruct Support
