lib/core/asdg.mli: Dep Format Ir
