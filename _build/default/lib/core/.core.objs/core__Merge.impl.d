lib/core/merge.ml: Array Expr Fun Ir List Nstmt Prog Region Support
