lib/core/weights.ml: Array Asdg Ir List
