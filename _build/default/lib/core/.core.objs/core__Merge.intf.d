lib/core/merge.mli: Ir Support
