lib/core/dep.mli: Format Ir Support
