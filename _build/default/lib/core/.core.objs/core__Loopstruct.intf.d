lib/core/loopstruct.mli: Format Support
