lib/core/contraction.mli: Ir Partition
