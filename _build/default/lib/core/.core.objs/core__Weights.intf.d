lib/core/weights.mli: Asdg
