lib/core/contraction.ml: Array Asdg Dep Ir List Loopstruct Partition Support
