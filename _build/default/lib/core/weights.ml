let weight g x =
  Array.fold_left
    (fun acc s ->
      acc + (Ir.Nstmt.ref_count s x * Ir.Region.volume s.Ir.Nstmt.region))
    0 (Asdg.stmts g)

let by_decreasing_weight g names =
  let weighted = List.map (fun x -> (x, weight g x)) names in
  List.stable_sort (fun (_, a) (_, b) -> compare b a) weighted
  |> List.map fst

let contraction_benefit g names =
  List.fold_left (fun acc x -> acc + weight g x) 0 names
