(** Statement merge (array operation synthesis).

    The alternative to contraction discussed in the paper's related
    work (§6, Hwang, Lee & Ju): substitute an intermediate array's
    {e definition} into its uses, shifting all offsets, so the array —
    and its defining statement — disappear without any loop fusion.
    Unlike contraction this can duplicate computation (each use
    re-evaluates the definition) and is not always possible; the bench
    harness's ablation quantifies the trade against the paper's
    fusion + contraction.

    A merge of array [x] defined by [\[R\] x := e] is performed when:
    - [x] is a candidate (confined to the block, not live-out) defined
      by exactly one statement, at offset 0, with [e] not reading [x];
    - no statement between the definition and a use writes an array
      that [e] reads (the substituted expression must see the same
      values), and no use writes one;
    - every use reads [x] only at points the definition computed
      (outside [R] the original read saw older values);
    - every use offset keeps all of [e]'s shifted references inside
      their arrays' bounds;
    - the duplication is acceptable: [uses × cost(e) ≤ budget]
      (defaults: at most 2 uses of a definition costing at most 8
      operations). *)

val run :
  ?max_uses:int ->
  ?max_cost:int ->
  Ir.Prog.t ->
  Ir.Prog.t * string list
(** Apply statement merge to every basic block until no more
    candidates qualify.  Returns the rewritten program and the arrays
    eliminated.  The result still satisfies [Ir.Prog.validate]. *)

val shift_expr : Support.Vec.t -> Ir.Expr.t -> Ir.Expr.t
(** Re-base an elementwise expression by an offset: references get the
    offset added; [Idx i] becomes [Idx i + d_i].  Exposed for tests. *)
