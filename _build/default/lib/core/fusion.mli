(** Statement fusion (paper §4.1).

    [for_contraction] is the FUSION-FOR-CONTRACTION algorithm of
    Figure 3; [for_locality] is the same algorithm with the
    CONTRACTIBLE? test removed; [greedy_pairwise] is the "all legal
    fusion" transformation (the paper's f4).

    All entry points accept [?may_fuse], a veto on merged statement
    sets, used to integrate fusion with communication optimization
    (§5.5): in favor-communication mode the veto rejects merges that
    would erase a pipelining opportunity. *)

val for_contraction :
  ?start:Partition.t ->
  ?relax_flow:bool ->
  ?may_fuse:(int list -> bool) ->
  ?order:[ `Weight | `Source ] ->
  candidates:string list ->
  Asdg.t ->
  Partition.t
(** Figure 3.  [candidates] are the arrays globally eligible for
    contraction (confined to this block, not live-out); arrays are
    considered in order of decreasing reference weight.  The result is
    always a valid fusion partition.  [start] continues from an
    existing partition of the same ASDG (used by the staged commercial-
    compiler emulations) instead of the trivial one.  [order:`Source]
    disables the decreasing-weight ordering (an ablation: the paper
    argues the greedy order matters on conflicting candidates). *)

val for_locality :
  ?relax_flow:bool ->
  ?may_fuse:(int list -> bool) ->
  Partition.t ->
  Partition.t
(** Fusion for locality enhancement, refining an existing partition:
    for each array in decreasing weight order, fuse all clusters
    referencing it when legal (no contractibility requirement). *)

val greedy_pairwise :
  ?relax_flow:bool ->
  ?may_fuse:(int list -> bool) ->
  Partition.t ->
  Partition.t
(** All legal fusion by a greedy pairwise algorithm (the paper's f4):
    repeatedly merges any legal cluster pair until fixpoint. *)
