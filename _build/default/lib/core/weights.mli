(** Reference weights (paper §3).

    The number of array element references eliminated by contracting
    array [x] — a function of how many times it is referenced at the
    array level and of the region sizes over which those references
    occur.  The fusion algorithm considers arrays in order of
    decreasing weight so that the arrays with the largest potential
    impact on total contraction benefit are attempted first. *)

val weight : Asdg.t -> string -> int
(** [weight g x] = Σ over statements of (references to [x]) × |region|. *)

val by_decreasing_weight : Asdg.t -> string list -> string list
(** Stable sort of the given arrays by decreasing {!weight} (ties keep
    first-occurrence order, making the optimizer deterministic). *)

val contraction_benefit : Asdg.t -> string list -> int
(** Total weight of a set of contracted arrays. *)
