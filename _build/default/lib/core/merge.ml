open Ir

let shift_expr d e =
  let rec go (e : Expr.t) : Expr.t =
    match e with
    | Expr.Const _ | Expr.Svar _ -> e
    | Expr.Idx i ->
        let di = Support.Vec.get d i in
        if di = 0 then e
        else Expr.Binop (Expr.Add, Expr.Idx i, Expr.Const (float_of_int di))
    | Expr.Ref (x, off) -> Expr.Ref (x, Support.Vec.add off d)
    | Expr.Unop (op, a) -> Expr.Unop (op, go a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
    | Expr.Select (c, a, b) -> Expr.Select (go c, go a, go b)
  in
  go e

let rec expr_cost (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Svar _ | Expr.Idx _ | Expr.Ref _ -> 0
  | Expr.Unop (_, a) -> 1 + expr_cost a
  | Expr.Binop (_, a, b) -> 1 + expr_cost a + expr_cost b
  | Expr.Select (c, a, b) -> 1 + expr_cost c + expr_cost a + expr_cost b

(* Does substituting [def_rhs] (shifted by each use offset) stay within
   every referenced array's bounds over the consumer's region? *)
let in_bounds prog region rhs =
  List.for_all
    (fun (y, off) ->
      match Prog.find_array prog y with
      | None -> false
      | Some info -> Region.contains info.Prog.bounds (Region.shift region off))
    (Expr.refs rhs)

(* One merge attempt inside a block.  Returns the rewritten statement
   list when some array was merged away. *)
let merge_once prog candidates (stmts : Nstmt.t list) =
  let arr = Array.of_list stmts in
  let n = Array.length arr in
  let try_array x =
    (* exactly one definition, at offset 0 *)
    let defs =
      List.filter (fun i -> arr.(i).Nstmt.lhs = x) (List.init n Fun.id)
    in
    match defs with
    | [ di ] when Support.Vec.is_null arr.(di).Nstmt.lhs_off
                  && not (List.mem x (Expr.ref_names arr.(di).Nstmt.rhs)) ->
        let def = arr.(di) in
        let uses =
          List.concat_map
            (fun i ->
              List.map
                (fun off -> (i, off))
                (Nstmt.reads_of arr.(i) x))
            (List.init n Fun.id)
        in
        let read_arrays = Expr.ref_names def.Nstmt.rhs in
        let values_stable i =
          (* no statement strictly between the definition and use
             writes an array the definition reads *)
          let rec check k =
            k >= i
            || ((not (List.mem arr.(k).Nstmt.lhs read_arrays)) && check (k + 1))
          in
          check (di + 1)
        in
        let ok =
          uses <> []
          && List.for_all
               (fun (i, off) ->
                 i > di && values_stable i
                 (* the use may only touch points the definition
                    actually computed; outside them the original read
                    saw older (e.g. initial) values *)
                 && Region.contains def.Nstmt.region
                      (Region.shift arr.(i).Nstmt.region off)
                 (* the consumer may not write an array the substituted
                    expression reads: that would break normal form (and
                    semantics) *)
                 && (not (List.mem arr.(i).Nstmt.lhs read_arrays))
                 && in_bounds prog arr.(i).Nstmt.region
                      (shift_expr off def.Nstmt.rhs))
               uses
        in
        if ok then Some (x, di, uses) else None
    | _ -> None
  in
  let rec first = function
    | [] -> None
    | x :: tl -> ( match try_array x with Some m -> Some m | None -> first tl)
  in
  match first candidates with
  | None -> None
  | Some (x, di, _uses) ->
      let def = arr.(di) in
      let rewritten =
        List.filteri (fun i _ -> i <> di) stmts
        |> List.map (fun (s : Nstmt.t) ->
               Nstmt.make ~region:s.Nstmt.region ~lhs:s.Nstmt.lhs
                 ~lhs_off:s.Nstmt.lhs_off
                 (Expr.map_refs
                    (fun y off ->
                      if y = x then shift_expr off def.Nstmt.rhs
                      else Expr.Ref (y, off))
                    s.Nstmt.rhs))
      in
      Some (x, rewritten)

let run ?(max_uses = 2) ?(max_cost = 8) prog =
  let eliminated = ref [] in
  let rec fix prog =
    let confined = Prog.confined_arrays prog in
    let changed = ref None in
    let prog' =
      Prog.map_blocks
        (fun bi stmts ->
          match !changed with
          | Some _ -> List.map (fun s -> Prog.Astmt s) stmts
          | None ->
              let candidates =
                List.filter_map
                  (fun (x, b) ->
                    if b <> bi then None
                    else
                      (* budget: uses x cost of the definition *)
                      let defs =
                        List.filter (fun (s : Nstmt.t) -> s.Nstmt.lhs = x) stmts
                      in
                      let uses =
                        List.fold_left
                          (fun acc (s : Nstmt.t) ->
                            acc + List.length (Nstmt.reads_of s x))
                          0 stmts
                      in
                      match defs with
                      | [ d ]
                        when uses >= 1 && uses <= max_uses
                             && expr_cost d.Nstmt.rhs <= max_cost ->
                          Some x
                      | _ -> None)
                  confined
              in
              (match merge_once prog candidates stmts with
              | Some (x, stmts') ->
                  changed := Some x;
                  List.map (fun s -> Prog.Astmt s) stmts'
              | None -> List.map (fun s -> Prog.Astmt s) stmts))
        prog
    in
    match !changed with
    | Some x ->
        eliminated := x :: !eliminated;
        (* drop the declaration *)
        let prog' =
          {
            prog' with
            Prog.arrays =
              List.filter
                (fun (a : Prog.array_info) -> a.Prog.name <> x)
                prog'.Prog.arrays;
          }
        in
        fix prog'
    | None -> prog
  in
  let result = fix prog in
  (result, List.rev !eliminated)
