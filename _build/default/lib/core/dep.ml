open Ir

type kind = Flow | Anti | Output

type label = {
  var : string;
  udv : Support.Vec.t;
  kind : kind;
}

(* Two references touch iff the index sets they access intersect. *)
let touches r1 d1 r2 d2 =
  Region.inter (Region.shift r1 d1) (Region.shift r2 d2) <> None

let dedup labels =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun l ->
      let key = (l.var, l.udv, l.kind) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    labels

let between (src : Nstmt.t) (tgt : Nstmt.t) =
  if Region.rank src.region <> Region.rank tgt.region then []
  else begin
    let acc = ref [] in
    let add var udv kind = acc := { var; udv; kind } :: !acc in
    let shared =
      List.filter
        (fun x -> List.mem x (Nstmt.arrays tgt))
        (Nstmt.arrays src)
    in
    List.iter
      (fun x ->
        (* flow: src writes x, tgt reads x *)
        List.iter
          (fun dw ->
            List.iter
              (fun dr ->
                if touches src.region dw tgt.region dr then
                  add x (Support.Vec.sub dw dr) Flow)
              (Nstmt.reads_of tgt x))
          (Nstmt.writes_of src x);
        (* anti: src reads x, tgt writes x *)
        List.iter
          (fun dr ->
            List.iter
              (fun dw ->
                if touches src.region dr tgt.region dw then
                  add x (Support.Vec.sub dr dw) Anti)
              (Nstmt.writes_of tgt x))
          (Nstmt.reads_of src x);
        (* output: both write x *)
        List.iter
          (fun dw1 ->
            List.iter
              (fun dw2 ->
                if touches src.region dw1 tgt.region dw2 then
                  add x (Support.Vec.sub dw1 dw2) Output)
              (Nstmt.writes_of tgt x))
          (Nstmt.writes_of src x))
      shared;
    dedup (List.rev !acc)
  end

let kind_name = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

let pp ppf l =
  Format.fprintf ppf "%s:%a:%s" l.var Support.Vec.pp l.udv (kind_name l.kind)
