(** The array statement dependence graph (Definition 3).

    A labeled acyclic digraph over the statements of one basic block.
    Vertices are statement indices in source order; an edge [(i, j)]
    with [i < j] means statement [j] depends on statement [i], and its
    label lists the inducing (variable, UDV, type) triples.  Acyclicity
    is by construction: edges always point from earlier to later
    statements of a single basic block. *)

type t

val build : Ir.Nstmt.t list -> t
(** Computes all pairwise dependences.  O(s²·refs). *)

val n : t -> int
(** Number of statements (vertices). *)

val stmt : t -> int -> Ir.Nstmt.t

val stmts : t -> Ir.Nstmt.t array

val edges : t -> (int * int) list
(** All edges, each with a nonempty label, ordered lexicographically. *)

val labels : t -> int -> int -> Dep.label list
(** Labels on edge [(i, j)]; [[]] if absent. *)

val vars : t -> string list
(** Distinct arrays referenced anywhere in the block, in first-
    occurrence order. *)

val deps_on : t -> string -> ((int * int) * Dep.label) list
(** Every dependence induced by the given variable. *)

val stmts_referencing : t -> string -> int list
(** Indices of statements that reference the array. *)

val pp : Format.formatter -> t -> unit
