(** Array-level data dependences between normalized statements.

    A dependence label carries the inducing variable, its unconstrained
    distance vector (Definition 2) and its type.  UDVs are built by
    subtracting the dependence {e target}'s offset vector from its
    {e source}'s offset (paper §2.2): for Figure 2(b) this yields
    [(0,1)] and [(1,-1)] for array [A] and [(-1,0)] for array [B]. *)

type kind = Flow | Anti | Output

type label = {
  var : string;
  udv : Support.Vec.t;
  kind : kind;
}

val between : Ir.Nstmt.t -> Ir.Nstmt.t -> label list
(** [between src tgt] is the set of dependences from the earlier
    statement [src] to the later statement [tgt], one label per
    (variable, read/write offset pair) whose accessed index sets
    actually intersect.  Statements of different ranks share no arrays
    (normal-form invariant) and produce no labels. *)

val kind_name : kind -> string
val pp : Format.formatter -> label -> unit
