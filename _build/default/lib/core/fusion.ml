let always _ = true

let stmts_of p reps = List.concat_map (fun r -> Partition.members p r) reps

(* One Figure-3 attempt: collect the clusters referencing [x], close
   them under GROW, and merge when legal.  [want_contract] switches
   between FUSION-FOR-CONTRACTION and fusion-for-locality. *)
let attempt ?relax_flow ~may_fuse ~want_contract p x =
  let refs = Asdg.stmts_referencing (Partition.asdg p) x in
  let c =
    List.map (Partition.cluster_of p) refs |> List.sort_uniq compare
  in
  match c with
  | [] | [ _ ] ->
      (* nothing to fuse; contraction of a single-cluster array is
         decided later by [Contraction.decide] *)
      p
  | _ ->
      let c = List.sort_uniq compare (c @ Partition.grow p c) in
      let ok_contract =
        (not want_contract) || Partition.contractible p x ~within:c
      in
      if
        ok_contract
        && Partition.can_merge ?relax_flow p c
        && may_fuse (stmts_of p c)
      then Partition.merge p c
      else p

let for_contraction ?start ?relax_flow ?(may_fuse = always)
    ?(order = `Weight) ~candidates g =
  let p = match start with Some p -> p | None -> Partition.trivial g in
  let order =
    match order with
    | `Weight -> Weights.by_decreasing_weight g candidates
    | `Source -> candidates
  in
  List.fold_left
    (fun p x ->
      if Partition.first_ref_is_write p x then
        attempt ?relax_flow ~may_fuse ~want_contract:true p x
      else p)
    p order

let for_locality ?relax_flow ?(may_fuse = always) p =
  let g = Partition.asdg p in
  let order = Weights.by_decreasing_weight g (Asdg.vars g) in
  List.fold_left (attempt ?relax_flow ~may_fuse ~want_contract:false) p order

let greedy_pairwise ?relax_flow ?(may_fuse = always) p =
  let rec pass p =
    let reps = List.map List.hd (Partition.clusters p) in
    let rec try_pairs = function
      | [] -> None
      | r1 :: rest -> (
          let merged =
            List.find_map
              (fun r2 ->
                if
                  Partition.can_merge ?relax_flow p [ r1; r2 ]
                  && may_fuse (stmts_of p [ r1; r2 ])
                then Some (Partition.merge p [ r1; r2 ])
                else None)
              rest
          in
          match merged with Some p' -> Some p' | None -> try_pairs rest)
    in
    match try_pairs reps with Some p' -> pass p' | None -> p
  in
  pass p
