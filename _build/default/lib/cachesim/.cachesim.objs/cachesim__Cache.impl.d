lib/cachesim/cache.ml: Array Option
