lib/cachesim/cache.mli:
