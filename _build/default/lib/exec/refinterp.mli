(** Reference interpreter for array-level programs.

    Executes an {!Ir.Prog.t} directly under array-language semantics,
    with no fusion, contraction or scalarization involved — the
    semantic oracle against which every compiled configuration is
    checked.  Elementwise statements are evaluated point-by-point in
    row-major order; because normal form forbids reading the written
    array, in-place evaluation is exact.  Reductions accumulate in
    row-major order, matching the loop order the scalarizer emits, so
    results are bitwise identical to compiled runs. *)

type result

exception Runtime_error of string

val run : Ir.Prog.t -> result

val get_scalar : result -> string -> float
val get_array : result -> string -> float array
(** Row-major contents over the array's allocation bounds. *)

val checksum : result -> string
(** Same digest algorithm as {!Interp.checksum}: equal strings mean
    observational equivalence on the live-out set. *)
