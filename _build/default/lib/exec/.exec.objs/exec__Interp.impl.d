lib/exec/interp.ml: Array Code Hashtbl Int64 Ir List Printf Sir
