lib/exec/interp.mli: Sir
