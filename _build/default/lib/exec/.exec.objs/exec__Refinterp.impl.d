lib/exec/refinterp.ml: Array Expr Hashtbl Int64 Ir List Nstmt Printf Prog Region
