lib/exec/refinterp.mli: Ir
