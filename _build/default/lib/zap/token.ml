(* Lexical tokens of the zap language. *)

type t =
  | IDENT of string
  | NUMBER of float
  | KW of string  (* program config region direction var scalar export
                     begin end for to do double *)
  | LBRACKET | RBRACKET | LPAREN | RPAREN
  | COMMA | SEMI | COLON | DOT
  | ASSIGN  (* := *)
  | DOTDOT  (* .. *)
  | AT  (* @ *)
  | PLUS | MINUS | STAR | SLASH | CARET
  | LT | LE | GT | GE | EQ | NE
  | ANDAND | OROR | BANG
  | RED of string  (* "+<<", "*<<", "min<<", "max<<" *)
  | EOF

let keywords =
  [ "program"; "config"; "region"; "direction"; "var"; "scalar"; "export";
    "begin"; "end"; "for"; "to"; "do"; "double" ]

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER f -> Printf.sprintf "number %g" f
  | KW s -> Printf.sprintf "keyword %S" s
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOT -> "'.'"
  | ASSIGN -> "':='"
  | DOTDOT -> "'..'"
  | AT -> "'@'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | CARET -> "'^'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | RED op -> Printf.sprintf "reduction %S" op
  | EOF -> "end of input"
