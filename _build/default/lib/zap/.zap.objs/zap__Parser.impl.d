lib/zap/parser.ml: Array Ast Lexer List Printf String Token
