lib/zap/ast.ml:
