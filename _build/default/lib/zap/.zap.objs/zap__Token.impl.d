lib/zap/token.ml: Printf
