lib/zap/elaborate.ml: Ast Expr Hashtbl Ir List Nstmt Parser Printf Prog Region Support
