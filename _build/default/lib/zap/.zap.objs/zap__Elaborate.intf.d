lib/zap/elaborate.mli: Ast Ir
