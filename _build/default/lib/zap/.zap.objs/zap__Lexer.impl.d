lib/zap/lexer.ml: List Printf String Token
