lib/zap/parser.mli: Ast
