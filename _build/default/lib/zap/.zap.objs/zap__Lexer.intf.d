lib/zap/lexer.mli: Token
