(** Elaboration: surface syntax → array IR.

    Resolves config constants (with optional command-line overrides),
    regions and directions; checks ranks, scopes and bounds; and
    {e normalizes} statements: any statement that reads the array it
    writes — which F90/ZPL array semantics permit but normal form
    (§2.1) does not — is split through a fresh compiler temporary
    [__tN], exactly the always-insert policy the paper advocates
    (§5.1): the temporary is a first-class contraction candidate, and
    when it is not truly needed the optimizer is guaranteed to contract
    it unless a more favorable contraction prevails. *)

exception Error of int * string
(** [(line, message)]; line 0 for program-level errors. *)

val elaborate : ?config:(string * float) list -> Ast.program -> Ir.Prog.t
(** [config] overrides declared config defaults by name.  The result
    always satisfies [Ir.Prog.validate]. *)

val compile_string : ?config:(string * float) list -> string -> Ir.Prog.t
(** Parse and elaborate.  Raises {!Error}, {!Parser.Error} or
    {!Lexer.Error}. *)

val compile_file : ?config:(string * float) list -> string -> Ir.Prog.t
