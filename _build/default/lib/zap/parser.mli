(** Recursive-descent parser for the zap language.

    Grammar (see docs/zap.md for the full reference):
    {v
    program  ::= "program" ident ";" decl* "begin" stmt* "end" "."?
    decl     ::= "config" ident ":=" numexpr ";"
               | "region" ident "=" "[" range ("," range)* "]" ";"
               | "direction" ident "=" "[" num ("," num)* "]" ";"
               | "var" ident ("," ident)* ":" regionref ("double")? ";"
               | "scalar" ident (":=" numexpr)? ";"
               | "export" ident ("," ident)* ";"
    stmt     ::= "[" regionref "]" ident ":=" expr ";"
               | ident ":=" redop regionref expr ";"
               | ident ":=" expr ";"
               | "for" ident ":=" numexpr "to" numexpr "do" stmt* "end" ";"
    v} *)

exception Error of int * string

val parse : string -> Ast.program
(** Raises {!Error} or {!Lexer.Error} with a line number on bad
    input. *)
