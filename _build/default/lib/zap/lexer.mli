(** Hand-written lexer for the zap language.

    Produces the token stream with line numbers for error reporting.
    Comments run from [--] to end of line.  Reduction operators
    ([+<<], [*<<], [min<<], [max<<]) are single tokens. *)

exception Error of int * string
(** [(line, message)] *)

val tokenize : string -> (Token.t * int) list
(** Token with the 1-based line it starts on; ends with [EOF]. *)
