exception Error of int * string

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let out = ref [] in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with Some '\n' -> incr line | _ -> ());
    incr pos
  in
  let emit t = out := (t, !line) :: !out in
  let err fmt = Printf.ksprintf (fun s -> raise (Error (!line, s))) fmt in
  let lex_number () =
    let start = !pos in
    while (match cur () with Some c -> is_digit c | None -> false) do
      advance ()
    done;
    (* fractional part: '.' followed by a digit ('..' is a range) *)
    (match (cur (), peek 1) with
    | Some '.', Some c when is_digit c ->
        advance ();
        while (match cur () with Some c -> is_digit c | None -> false) do
          advance ()
        done
    | _ -> ());
    (match (cur (), peek 1) with
    | Some ('e' | 'E'), Some c when is_digit c || c = '+' || c = '-' ->
        advance ();
        (match cur () with Some ('+' | '-') -> advance () | _ -> ());
        while (match cur () with Some c -> is_digit c | None -> false) do
          advance ()
        done
    | _ -> ());
    let text = String.sub src start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> emit (Token.NUMBER f)
    | None -> err "malformed number %S" text
  in
  let lex_ident () =
    let start = !pos in
    while (match cur () with Some c -> is_alnum c | None -> false) do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    (* reduction operators min<< / max<< *)
    if (text = "min" || text = "max") && peek 0 = Some '<' && peek 1 = Some '<'
    then begin
      advance ();
      advance ();
      emit (Token.RED (text ^ "<<"))
    end
    else if List.mem text Token.keywords then emit (Token.KW text)
    else begin
      if String.length text >= 2 && String.sub text 0 2 = "__" then
        err "identifiers starting with '__' are reserved: %S" text;
      emit (Token.IDENT text)
    end
  in
  let two a b t =
    match (cur (), peek 1) with
    | Some x, Some y when x = a && y = b ->
        advance ();
        advance ();
        emit t;
        true
    | _ -> false
  in
  while !pos < n do
    match cur () with
    | None -> ()
    | Some c ->
        if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
        else if c = '-' && peek 1 = Some '-' then
          (* comment to end of line *)
          while cur () <> None && cur () <> Some '\n' do
            advance ()
          done
        else if is_digit c then lex_number ()
        else if is_alpha c then lex_ident ()
        else if two '+' '<' (Token.RED "+<<") then begin
          match cur () with
          | Some '<' -> advance ()
          | _ -> err "expected '+<<'"
        end
        else if two '*' '<' (Token.RED "*<<") then begin
          match cur () with
          | Some '<' -> advance ()
          | _ -> err "expected '*<<'"
        end
        else if two ':' '=' Token.ASSIGN then ()
        else if two '.' '.' Token.DOTDOT then ()
        else if two '<' '=' Token.LE then ()
        else if two '>' '=' Token.GE then ()
        else if two '=' '=' Token.EQ then ()
        else if two '!' '=' Token.NE then ()
        else if two '&' '&' Token.ANDAND then ()
        else if two '|' '|' Token.OROR then ()
        else begin
          let simple t =
            advance ();
            emit t
          in
          match c with
          | '[' -> simple Token.LBRACKET
          | ']' -> simple Token.RBRACKET
          | '(' -> simple Token.LPAREN
          | ')' -> simple Token.RPAREN
          | ',' -> simple Token.COMMA
          | ';' -> simple Token.SEMI
          | ':' -> simple Token.COLON
          | '.' -> simple Token.DOT
          | '@' -> simple Token.AT
          | '+' -> simple Token.PLUS
          | '-' -> simple Token.MINUS
          | '*' -> simple Token.STAR
          | '/' -> simple Token.SLASH
          | '^' -> simple Token.CARET
          | '<' -> simple Token.LT
          | '>' -> simple Token.GT
          | '=' -> simple Token.EQ  (* single '=' in region/direction decls *)
          | '!' -> simple Token.BANG
          | _ -> err "unexpected character %C" c
        end
  done;
  emit Token.EOF;
  List.rev !out
