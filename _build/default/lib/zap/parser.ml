exception Error of int * string

type state = {
  toks : (Token.t * int) array;
  mutable pos : int;
}

let cur st = fst st.toks.(st.pos)
let cur_line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let err st fmt =
  Printf.ksprintf (fun s -> raise (Error (cur_line st, s))) fmt

let expect st t =
  if cur st = t then advance st
  else err st "expected %s, found %s" (Token.to_string t) (Token.to_string (cur st))

let ident st =
  match cur st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> err st "expected an identifier, found %s" (Token.to_string t)

let kw st k = expect st (Token.KW k)

(* ---------------- compile-time numeric expressions ----------------- *)

let rec numexpr st = num_add st

and num_add st =
  let lhs = ref (num_mul st) in
  let rec loop () =
    match cur st with
    | Token.PLUS ->
        advance st;
        lhs := Ast.NBin ('+', !lhs, num_mul st);
        loop ()
    | Token.MINUS ->
        advance st;
        lhs := Ast.NBin ('-', !lhs, num_mul st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and num_mul st =
  let lhs = ref (num_atom st) in
  let rec loop () =
    match cur st with
    | Token.STAR ->
        advance st;
        lhs := Ast.NBin ('*', !lhs, num_atom st);
        loop ()
    | Token.SLASH ->
        advance st;
        lhs := Ast.NBin ('/', !lhs, num_atom st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and num_atom st =
  match cur st with
  | Token.NUMBER f ->
      advance st;
      Ast.Num f
  | Token.IDENT s ->
      advance st;
      Ast.NVar s
  | Token.MINUS ->
      advance st;
      Ast.NNeg (num_atom st)
  | Token.LPAREN ->
      advance st;
      let e = numexpr st in
      expect st Token.RPAREN;
      e
  | t -> err st "expected a numeric expression, found %s" (Token.to_string t)

(* ---------------- regions and directions --------------------------- *)

let range st =
  let lo = numexpr st in
  expect st Token.DOTDOT;
  let hi = numexpr st in
  (lo, hi)

let bracketed_ranges st =
  expect st Token.LBRACKET;
  let rec loop acc =
    let r = range st in
    match cur st with
    | Token.COMMA ->
        advance st;
        loop (r :: acc)
    | _ ->
        expect st Token.RBRACKET;
        List.rev (r :: acc)
  in
  loop []

let peek st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1)
  else Token.EOF

(* A bracketed region: either a region name ([R]) or inline bounds
   ([1..n, 1..m]). *)
let peek2 st =
  if st.pos + 2 < Array.length st.toks then fst st.toks.(st.pos + 2)
  else Token.EOF

let bracketed_region st =
  match (cur st, peek st, peek2 st) with
  | Token.LBRACKET, Token.IDENT s, Token.RBRACKET ->
      advance st;
      advance st;
      advance st;
      Ast.Rname s
  | _ -> Ast.Rinline (bracketed_ranges st)

let region_ref st =
  match cur st with
  | Token.LBRACKET -> bracketed_region st
  | Token.IDENT s ->
      advance st;
      Ast.Rname s
  | t -> err st "expected a region, found %s" (Token.to_string t)

let bracketed_nums st =
  expect st Token.LBRACKET;
  let rec loop acc =
    let x = numexpr st in
    match cur st with
    | Token.COMMA ->
        advance st;
        loop (x :: acc)
    | _ ->
        expect st Token.RBRACKET;
        List.rev (x :: acc)
  in
  loop []

let dir_ref st =
  match cur st with
  | Token.LBRACKET -> Ast.Dinline (bracketed_nums st)
  | Token.IDENT s ->
      advance st;
      Ast.Dname s
  | t -> err st "expected a direction, found %s" (Token.to_string t)

(* ---------------- expressions -------------------------------------- *)

let index_of_ident s =
  let n = String.length s in
  if n > 5 && String.sub s 0 5 = "index" then
    match int_of_string_opt (String.sub s 5 (n - 5)) with
    | Some d when d >= 1 -> Some d
    | _ -> None
  else None

let rec expr st = expr_or st

and expr_or st =
  let lhs = ref (expr_and st) in
  while cur st = Token.OROR do
    advance st;
    lhs := Ast.Bin ("||", !lhs, expr_and st)
  done;
  !lhs

and expr_and st =
  let lhs = ref (expr_cmp st) in
  while cur st = Token.ANDAND do
    advance st;
    lhs := Ast.Bin ("&&", !lhs, expr_cmp st)
  done;
  !lhs

and expr_cmp st =
  let lhs = expr_sum st in
  let op =
    match cur st with
    | Token.LT -> Some "<"
    | Token.LE -> Some "<="
    | Token.GT -> Some ">"
    | Token.GE -> Some ">="
    | Token.EQ -> Some "=="
    | Token.NE -> Some "!="
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Bin (op, lhs, expr_sum st)

and expr_sum st =
  let lhs = ref (expr_prod st) in
  let rec loop () =
    match cur st with
    | Token.PLUS ->
        advance st;
        lhs := Ast.Bin ("+", !lhs, expr_prod st);
        loop ()
    | Token.MINUS ->
        advance st;
        lhs := Ast.Bin ("-", !lhs, expr_prod st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and expr_prod st =
  let lhs = ref (expr_unary st) in
  let rec loop () =
    match cur st with
    | Token.STAR ->
        advance st;
        lhs := Ast.Bin ("*", !lhs, expr_unary st);
        loop ()
    | Token.SLASH ->
        advance st;
        lhs := Ast.Bin ("/", !lhs, expr_unary st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and expr_unary st =
  match cur st with
  | Token.MINUS ->
      advance st;
      Ast.Unary ("-", expr_unary st)
  | Token.BANG ->
      advance st;
      Ast.Unary ("!", expr_unary st)
  | _ -> expr_pow st

and expr_pow st =
  let base = expr_atom st in
  match cur st with
  | Token.CARET ->
      advance st;
      Ast.Bin ("^", base, expr_unary st)
  | _ -> base

and expr_atom st =
  match cur st with
  | Token.NUMBER f ->
      advance st;
      Ast.Const f
  | Token.LPAREN ->
      advance st;
      let e = expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance st;
      match cur st with
      | Token.LPAREN ->
          advance st;
          let rec args acc =
            let a = expr st in
            match cur st with
            | Token.COMMA ->
                advance st;
                args (a :: acc)
            | _ ->
                expect st Token.RPAREN;
                List.rev (a :: acc)
          in
          let args = if cur st = Token.RPAREN then (advance st; []) else args [] in
          Ast.Call (name, args)
      | Token.AT ->
          advance st;
          Ast.At (name, dir_ref st)
      | _ -> (
          match index_of_ident name with
          | Some d -> Ast.Index d
          | None -> Ast.Var name))
  | t -> err st "expected an expression, found %s" (Token.to_string t)

(* ---------------- statements --------------------------------------- *)

let rec stmt st : Ast.stmt =
  let line = cur_line st in
  match cur st with
  | Token.LBRACKET ->
      let r = region_ref st in
      let lhs = ident st in
      expect st Token.ASSIGN;
      let e = expr st in
      expect st Token.SEMI;
      { Ast.line; it = Ast.Assign (r, lhs, e) }
  | Token.KW "for" ->
      advance st;
      let v = ident st in
      expect st Token.ASSIGN;
      let lo = numexpr st in
      kw st "to";
      let hi = numexpr st in
      kw st "do";
      let body = stmts_until st [ "end" ] in
      kw st "end";
      expect st Token.SEMI;
      { Ast.line; it = Ast.For (v, lo, hi, body) }
  | Token.IDENT _ -> (
      let target = ident st in
      expect st Token.ASSIGN;
      match cur st with
      | Token.RED op ->
          advance st;
          let r = region_ref st in
          let e = expr st in
          expect st Token.SEMI;
          { Ast.line; it = Ast.Reduce (target, op, r, e) }
      | _ ->
          let e = expr st in
          expect st Token.SEMI;
          { Ast.line; it = Ast.Sassign (target, e) })
  | t -> err st "expected a statement, found %s" (Token.to_string t)

and stmts_until st enders =
  let rec loop acc =
    match cur st with
    | Token.KW k when List.mem k enders -> List.rev acc
    | Token.EOF -> List.rev acc
    | _ -> loop (stmt st :: acc)
  in
  loop []

(* ---------------- declarations ------------------------------------- *)

let decl st : Ast.decl =
  let dline = cur_line st in
  match cur st with
  | Token.KW "config" ->
      advance st;
      let name = ident st in
      expect st Token.ASSIGN;
      let v = numexpr st in
      expect st Token.SEMI;
      { Ast.dline; dit = Ast.Config (name, v) }
  | Token.KW "region" ->
      advance st;
      let name = ident st in
      (match cur st with
      | Token.ASSIGN -> advance st
      | _ -> expect st Token.EQ);
      let rs = bracketed_ranges st in
      expect st Token.SEMI;
      { Ast.dline; dit = Ast.Region (name, rs) }
  | Token.KW "direction" ->
      advance st;
      let name = ident st in
      (match cur st with
      | Token.ASSIGN -> advance st
      | _ -> expect st Token.EQ);
      let ds = bracketed_nums st in
      expect st Token.SEMI;
      { Ast.dline; dit = Ast.Direction (name, ds) }
  | Token.KW "var" ->
      advance st;
      let rec names acc =
        let n = ident st in
        match cur st with
        | Token.COMMA ->
            advance st;
            names (n :: acc)
        | _ -> List.rev (n :: acc)
      in
      let ns = names [] in
      expect st Token.COLON;
      let r = region_ref st in
      (match cur st with Token.KW "double" -> advance st | _ -> ());
      expect st Token.SEMI;
      { Ast.dline; dit = Ast.VarArrays (ns, r) }
  | Token.KW "scalar" ->
      advance st;
      let name = ident st in
      let init =
        match cur st with
        | Token.ASSIGN ->
            advance st;
            Some (numexpr st)
        | _ -> None
      in
      expect st Token.SEMI;
      { Ast.dline; dit = Ast.Scalar (name, init) }
  | Token.KW "export" ->
      advance st;
      let rec names acc =
        let n = ident st in
        match cur st with
        | Token.COMMA ->
            advance st;
            names (n :: acc)
        | _ -> List.rev (n :: acc)
      in
      let ns = names [] in
      expect st Token.SEMI;
      { Ast.dline; dit = Ast.Export ns }
  | t -> err st "expected a declaration, found %s" (Token.to_string t)

let parse src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  kw st "program";
  let pname = ident st in
  expect st Token.SEMI;
  let rec decls acc =
    match cur st with
    | Token.KW "begin" -> List.rev acc
    | _ -> decls (decl st :: acc)
  in
  let decls = decls [] in
  kw st "begin";
  let body = stmts_until st [ "end" ] in
  kw st "end";
  (match cur st with Token.DOT -> advance st | _ -> ());
  (match cur st with
  | Token.EOF -> ()
  | t -> err st "trailing input: %s" (Token.to_string t));
  { Ast.pname; decls; body }
