(* Surface abstract syntax of the zap language.  Bounds and scalar
   constant expressions are kept symbolic until elaboration, when the
   config environment is known. *)

type numexpr =
  | Num of float
  | NVar of string  (* config name *)
  | NNeg of numexpr
  | NBin of char * numexpr * numexpr  (* '+' '-' '*' '/' *)

type range = numexpr * numexpr

type region_ref =
  | Rname of string
  | Rinline of range list

type dir_ref =
  | Dname of string
  | Dinline of numexpr list

type expr =
  | Const of float
  | Var of string  (* array, scalar, config or loop variable *)
  | At of string * dir_ref  (* A@north / A@[-1,0] *)
  | Index of int  (* index1, index2, ... *)
  | Call of string * expr list  (* builtin functions *)
  | Unary of string * expr  (* "-" "!" *)
  | Bin of string * expr * expr

type stmt = {
  line : int;
  it : stmt_kind;
}

and stmt_kind =
  | Assign of region_ref * string * expr  (* [R] A := e *)
  | Reduce of string * string * region_ref * expr  (* s := +<< [R] e *)
  | Sassign of string * expr  (* s := e *)
  | For of string * numexpr * numexpr * stmt list

type decl = {
  dline : int;
  dit : decl_kind;
}

and decl_kind =
  | Config of string * numexpr
  | Region of string * range list
  | Direction of string * numexpr list
  | VarArrays of string list * region_ref
  | Scalar of string * numexpr option
  | Export of string list

type program = {
  pname : string;
  decls : decl list;
  body : stmt list;
}
