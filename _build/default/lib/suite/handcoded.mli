(** Hand-written scalar implementations (paper §5.2).

    The paper compares its compiler's output against third-party
    scalar-language versions of the benchmarks; these are our
    equivalents: direct OCaml implementations written the way a scalar
    programmer would, with no intermediate arrays beyond the essential
    state.  Because the zap benchmarks' per-element randomness and
    arithmetic are pure and deterministic, the hand-coded versions are
    required (and tested) to produce {e bit-identical} results to the
    compiled array programs — the strongest form of the paper's
    "comparable to hand-coded" claim.

    Array counts: EP uses {e no} arrays (all state fits in scalars —
    exactly what full contraction achieves); Frac uses 3 (the
    iteration state and the image, matching c2's residue). *)

val ep : n:int -> (string * float) list
(** The scalar results of the EP benchmark for a tile of [n] pairs, in
    zap-export order: cnt, sx, sy, q0..q8. *)

val frac :
  n:int -> iters:int -> xmin:float -> ymin:float -> scale:float ->
  float array
(** The Frac image over the allocation bounds [1..n]², row-major —
    directly comparable to [Exec.Refinterp.get_array _ "IMG"]. *)
