type bench = {
  name : string;
  source : string;
  tile_config : string;
  default_tile : int;
  rank : int;
  scalar_arrays : int option;
  description : string;
}

let all =
  [
    {
      name = "ep";
      source = Sources.ep;
      tile_config = "n";
      default_tile = 4096;
      rank = 1;
      scalar_arrays = Some 0;
      description = "NAS embarrassingly-parallel kernel: Gaussian deviates";
    };
    {
      name = "frac";
      source = Sources.frac;
      tile_config = "n";
      default_tile = 64;
      rank = 2;
      scalar_arrays = Some 3;
      description = "escape-time fractal";
    };
    {
      name = "tomcatv";
      source = Sources.tomcatv;
      tile_config = "n";
      default_tile = 48;
      rank = 2;
      scalar_arrays = Some 7;
      description = "SPEC CFP95 vectorized mesh generation";
    };
    {
      name = "sp";
      source = Sources.sp;
      tile_config = "n";
      default_tile = 40;
      rank = 2;
      scalar_arrays = Some 17;
      description = "NAS scalar-pentadiagonal solver (2-D adaptation)";
    };
    {
      name = "simple";
      source = Sources.simple;
      tile_config = "n";
      default_tile = 40;
      rank = 2;
      scalar_arrays = Some 30;
      description = "LLNL hydrodynamics + heat conduction";
    };
    {
      name = "fibro";
      source = Sources.fibro;
      tile_config = "n";
      default_tile = 40;
      rank = 2;
      scalar_arrays = None;
      description = "fibroblast / extracellular-matrix biology model";
    };
  ]

let extras =
  [
    {
      name = "adi3d";
      source = Sources.adi3d;
      tile_config = "n";
      default_tile = 12;
      rank = 3;
      scalar_arrays = Some 3;
      description = "rank-3 ADI sweep (extra: 3-D loop structures and grids)";
    };
  ]

let by_name n = List.find_opt (fun b -> b.name = n) (all @ extras)

let program ?tile ?(config = []) b =
  let config =
    match tile with
    | Some t -> (b.tile_config, float_of_int t) :: config
    | None -> config
  in
  Zap.Elaborate.compile_string ~config b.source

let load ?tile ?config name =
  match by_name name with
  | Some b -> program ?tile ?config b
  | None -> invalid_arg ("Suite.load: unknown benchmark " ^ name)

module Fragments = Fragments
(** Re-exported: the Figure 5 probe fragments. *)

module Handcoded = Handcoded
(** Re-exported: hand-written scalar versions (paper §5.2). *)
