(** The Figure 5 probe fragments.

    Eight small programs the paper compiles with five commercial
    array-language compilers to infer their fusion/contraction
    capabilities (Figure 6).  Fragments (1)–(3) probe statement fusion
    under progressively harder dependences; (4)–(5) probe elimination
    of compiler temporaries; (6)–(7) the same for user temporaries;
    (8) probes whether compiler and user arrays are weighed together.

    Fragment (8) is reconstructed (the ACM scan garbles it): two user
    temporaries whose contraction conflicts with contracting the
    compiler temporary of the final self-referencing statement, so a
    compiler that considers compiler temporaries separately (Cray)
    contracts one array where the integrated strategy contracts two.
    See EXPERIMENTS.md. *)

type criterion =
  | Fused  (** the block compiles to a single loop nest *)
  | Contracted of string list
      (** the named arrays are eliminated ([__t1] = the compiler
          temporary of the fragment's self-referencing statement) *)

type t = {
  id : int;
  source : string;
  criterion : criterion;
  expected : (string * bool) list;
      (** paper's Figure 6 row: vendor name → produced proper code *)
  note : string;
}

val all : t list

val block : t -> Ir.Prog.t * Ir.Nstmt.t list
(** The elaborated program and the basic block the probe examines (its
    last block; fragments have an initialization block first). *)

val passes : t -> Compilers.Vendors.result -> bool
(** Does an optimization result satisfy the fragment's criterion? *)

val evaluate : unit -> (t * (Compilers.Vendors.caps * bool) list) list
(** Run every emulated compiler on every fragment: the data behind the
    Figure 6 table. *)
