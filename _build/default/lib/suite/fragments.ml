type criterion =
  | Fused
  | Contracted of string list

type t = {
  id : int;
  source : string;
  criterion : criterion;
  expected : (string * bool) list;
  note : string;
}

(* Shared prologue: a 2-D tile with initialized inputs.  The scalar
   assignment to [s0] separates the initialization block from the probe
   block, so the probe is always the program's final basic block. *)
let wrap body exports =
  Printf.sprintf
    {|
program frag;
config n := 8;
region R = [1..n, 1..n];
var A, B, C, D, T1, T2 : [0..n+1, 0..n+1];
scalar s0;
export %s;
begin
  [R] D := 0.1 * index1 + 0.2 * index2;
  [R] A := sin(0.3 * index1) + cos(0.2 * index2);
  s0 := 0.0;
%s
end.
|}
    exports body

let pgi = "PGI HPF 2.1"
let ibm = "IBM XLHPF 1.2"
let apr = "APR XHPF 2.0"
let cray = "Cray F90 2.0.1.0"
let zpl = "ZPL 1.13"

let expect ~pgi:p ~ibm:i ~apr:a ~cray:c ~zpl:z =
  [ (pgi, p); (ibm, i); (apr, a); (cray, c); (zpl, z) ]

let all =
  [
    {
      id = 1;
      source =
        wrap {|  [R] B := A + A;
  [R] C := A * A;|} "B, C";
      criterion = Fused;
      expected = expect ~pgi:false ~ibm:false ~apr:true ~cray:true ~zpl:true;
      note = "fusion for temporal locality, no dependences";
    };
    {
      id = 2;
      source =
        wrap {|  [R] B := A@[-1,0] + A@[-1,0];
  [R] C := A * A;|} "B, C";
      criterion = Fused;
      expected = expect ~pgi:false ~ibm:false ~apr:true ~cray:true ~zpl:true;
      note = "fusion with offset (input-only) references";
    };
    {
      id = 3;
      source =
        wrap {|  [R] B := A@[-1,0] + C@[-1,0];
  [R] C := A * A;|} "B, C";
      criterion = Fused;
      expected = expect ~pgi:false ~ibm:false ~apr:false ~cray:false ~zpl:true;
      note = "fusion must carry an anti dependence (loop reversal)";
    };
    {
      id = 4;
      source = wrap {|  [R] A := A + A;|} "A";
      criterion = Contracted [ "__t1" ];
      expected = expect ~pgi:true ~ibm:true ~apr:true ~cray:true ~zpl:true;
      note = "compiler temporary, offset-0 self reference";
    };
    {
      id = 5;
      source = wrap {|  [R] A := A@[-1,0] + A@[-1,0];|} "A";
      criterion = Contracted [ "__t1" ];
      expected = expect ~pgi:true ~ibm:true ~apr:true ~cray:true ~zpl:true;
      note = "compiler temporary requiring loop reversal";
    };
    {
      id = 6;
      source =
        wrap {|  [R] B := A + A;
  [R] C := B;|} "A, C";
      criterion = Contracted [ "B" ];
      expected = expect ~pgi:false ~ibm:false ~apr:false ~cray:true ~zpl:true;
      note = "user temporary";
    };
    {
      id = 7;
      source =
        wrap {|  [R] B := A + A + C@[-1,0];
  [R] C := B;|} "A, C";
      criterion = Contracted [ "B" ];
      expected = expect ~pgi:false ~ibm:false ~apr:false ~cray:false ~zpl:true;
      note = "user temporary behind an anti dependence";
    };
    {
      id = 8;
      source =
        wrap
          {|  [R] T1 := A@[-1,0] + B;
  [R] T2 := A@[-1,0] * B;
  [R] A := A@[1,0] + T1 * T1 + T2 * T2;|}
          "A, B";
      criterion = Contracted [ "T1"; "T2" ];
      expected = expect ~pgi:false ~ibm:false ~apr:false ~cray:false ~zpl:true;
      note =
        "trade-off: contracting the final statement's compiler \
         temporary forecloses contracting the two user temporaries \
         (reconstructed; see EXPERIMENTS.md)";
    };
  ]

let block f =
  let prog = Zap.Elaborate.compile_string f.source in
  let blocks = Ir.Prog.blocks prog in
  match List.rev blocks with
  | probe :: _ -> (prog, probe)
  | [] -> invalid_arg "Fragments.block: no blocks"

let passes f (r : Compilers.Vendors.result) =
  match f.criterion with
  | Fused -> Compilers.Vendors.n_nests r = 1
  | Contracted xs ->
      List.for_all (fun x -> Compilers.Vendors.is_contracted r x) xs

let evaluate () =
  List.map
    (fun f ->
      let prog, probe = block f in
      let rows =
        List.map
          (fun caps ->
            let r = Compilers.Vendors.optimize_block caps prog probe in
            (caps, passes f r))
          Compilers.Vendors.all
      in
      (f, rows))
    all
