(* Hand-written scalar versions of EP and Frac.

   Arithmetic follows the zap sources' expression trees exactly
   (operator for operator, association for association) so that
   results are bit-identical to the array-language versions. *)

let hr = Ir.Expr.hashrand

(* programs/ep.zap, contracted by hand: no arrays at all. *)
let ep ~n =
  let fn = float_of_int n in
  let cnt = ref 0.0 and sx = ref 0.0 and sy = ref 0.0 in
  let q = Array.make 9 0.0 in
  for i = 1 to n do
    let fi = float_of_int i in
    let u1 = hr fi in
    let u2 = hr (fi +. fn) in
    let v1 = (2.0 *. u1) -. 1.0 in
    let v2 = (2.0 *. u2) -. 1.0 in
    let s = (v1 *. v1) +. (v2 *. v2) in
    let acc = if s < 1.0 && s > 0.0 then 1.0 else 0.0 in
    let sl = log (Float.max s 1e-30) in
    let sf = sqrt (-.(2.0) *. sl /. Float.max s 1e-30) in
    let gx = v1 *. sf *. acc in
    let gy = v2 *. sf *. acc in
    let ax = abs_float gx in
    let ay = abs_float gy in
    let mx = Float.max ax ay in
    cnt := !cnt +. acc;
    sx := !sx +. gx;
    sy := !sy +. gy;
    for k = 0 to 8 do
      let fk = float_of_int k in
      let b =
        acc
        *. (if mx >= fk then 1.0 else 0.0)
        *. (if mx < fk +. 1.0 then 1.0 else 0.0)
      in
      q.(k) <- q.(k) +. b
    done
  done;
  [ ("cnt", !cnt); ("sx", !sx); ("sy", !sy) ]
  @ List.init 9 (fun k -> (Printf.sprintf "q%d" k, q.(k)))

(* programs/frac.zap with the temporaries contracted by hand: only the
   iteration state (zr, zi) and the image remain — because every
   reference in the loop body uses offset 0, per-point evaluation in
   statement order is exact. *)
let frac ~n ~iters ~xmin ~ymin ~scale =
  (* frac's arrays are declared over [1..n,1..n] itself: every
     reference is offset 0, so no padding exists *)
  let idx i j = ((i - 1) * n) + (j - 1) in
  let zr = Array.make (n * n) 0.0 in
  let zi = Array.make (n * n) 0.0 in
  let img = Array.make (n * n) 0.0 in
  let fn = float_of_int n in
  for _t = 1 to iters do
    for i = 1 to n do
      for j = 1 to n do
        let fi = float_of_int i and fj = float_of_int j in
        let cr = xmin +. (scale *. fj /. fn) in
        let ci = ymin +. (scale *. fi /. fn) in
        let k = idx i j in
        let zr2 = zr.(k) *. zr.(k) in
        let zi2 = zi.(k) *. zi.(k) in
        let mask = if zr2 +. zi2 <= 4.0 then 1.0 else 0.0 in
        (* the zap source routes ZI and ZR through compiler
           temporaries; both read the pre-update values *)
        let zi' =
          if mask <> 0.0 then (2.0 *. zr.(k) *. zi.(k)) +. ci else zi.(k)
        in
        let zr' = if mask <> 0.0 then zr2 -. zi2 +. cr else zr.(k) in
        zi.(k) <- zi';
        zr.(k) <- zr';
        img.(k) <- img.(k) +. mask
      done
    done
  done;
  img
