lib/suite/handcoded.ml: Array Float Ir List Printf
