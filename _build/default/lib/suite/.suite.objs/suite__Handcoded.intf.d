lib/suite/handcoded.mli:
