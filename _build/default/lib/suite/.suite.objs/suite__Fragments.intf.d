lib/suite/fragments.mli: Compilers Ir
