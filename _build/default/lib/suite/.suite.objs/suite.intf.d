lib/suite/suite.mli: Fragments Handcoded Ir
