lib/suite/sources.ml:
