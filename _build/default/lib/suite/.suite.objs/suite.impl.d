lib/suite/suite.ml: Fragments Handcoded List Sources Zap
