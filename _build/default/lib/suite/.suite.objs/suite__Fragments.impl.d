lib/suite/fragments.ml: Compilers Ir List Printf Zap
