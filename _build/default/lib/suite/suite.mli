(** The benchmark suite of the paper's evaluation (§5).

    Six programs — EP, Frac, Tomcatv, SP, Simple and Fibro — written in
    the zap array language (sources under [programs/], embedded at
    build time).  Each benchmark exposes one config constant that sets
    the per-processor tile edge; the evaluation scales total problem
    size with the machine (paper §5.4), so per-processor extents are
    what the harness controls. *)

type bench = {
  name : string;
  source : string;  (** zap source text *)
  tile_config : string;  (** config constant controlling the tile edge *)
  default_tile : int;
  rank : int;  (** rank of the distributed arrays *)
  scalar_arrays : int option;
      (** static arrays an equivalent hand-written scalar program
          needs — our analytic estimate standing in for the paper's
          third-party codes ([None] for Fibro, which was developed in
          ZPL and has no scalar version; paper Figure 7). *)
  description : string;
}

val all : bench list
(** In the paper's order: EP, Frac, Tomcatv, SP, Simple, Fibro. *)

val extras : bench list
(** Benchmarks beyond the paper's six (currently the rank-3 ADI
    sweep); {!by_name}/{!load} resolve these too, but the figure
    benches iterate {!all} only. *)

val by_name : string -> bench option

val program : ?tile:int -> ?config:(string * float) list -> bench -> Ir.Prog.t
(** Parse and elaborate the benchmark; [tile] overrides the tile-edge
    config, [config] overrides anything else. *)

val load : ?tile:int -> ?config:(string * float) list -> string -> Ir.Prog.t
(** [load name] — {!by_name} + {!program}; raises [Invalid_argument]
    on an unknown benchmark. *)

module Fragments : module type of Fragments
(** The Figure 5 probe fragments and their Figure 6 evaluation. *)

module Handcoded : module type of Handcoded
(** Hand-written scalar versions of EP and Frac (paper §5.2),
    bit-identical to the compiled array programs. *)
