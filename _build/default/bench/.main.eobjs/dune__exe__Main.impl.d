bench/main.ml: Analyze Array Bechamel Benchmark Compilers Core Figures Harness Hashtbl Ir List Measure Printf Staged String Suite Support Sys Test Time Toolkit
