bench/harness.ml: Cachesim Comm Compilers Exec Machine Printf String
