bench/main.mli:
