bench/figures.ml: Cachesim Comm Compilers Core Exec Harness Ir List Machine Printf Sir String Suite Zap
