-- Frac: escape-time fractal (Mandelbrot iteration).
--
-- Stands in for the paper's Frac benchmark: a small, regular,
-- communication-free 2-D kernel dominated by elementwise temporaries.
-- The coordinate fields and the per-step temporaries all contract;
-- only the iteration state (ZR, ZI) and the output image survive.

program frac;

config n := 64;          -- image tile edge (per processor)
config iters := 12;      -- escape iterations
config xmin := -2.0;
config ymin := -1.5;
config scale := 3.0;

region R = [1..n, 1..n];

var IMG        : R;      -- escape counts (the output)
var ZR, ZI     : R;      -- iteration state
var CR, CI     : R;      -- pixel coordinates
var ZR2, ZI2   : R;      -- squared terms
var MASK       : R;      -- still-bounded mask

export IMG;

begin
  [R] ZR := 0.0;
  [R] ZI := 0.0;
  [R] IMG := 0.0;
  for t := 1 to iters do
    [R] CR := xmin + scale * index2 / n;
    [R] CI := ymin + scale * index1 / n;
    [R] ZR2 := ZR * ZR;
    [R] ZI2 := ZI * ZI;
    [R] MASK := (ZR2 + ZI2) <= 4.0;
    [R] ZI := select(MASK, 2.0 * ZR * ZI + CI, ZI);
    [R] ZR := select(MASK, ZR2 - ZI2 + CR, ZR);
    [R] IMG := IMG + MASK;
  end;
end.
