-- Simple: Lagrangian hydrodynamics with heat conduction
-- (Crowley, Hendrickson & Luby, LLNL UCID-17715), the classic
-- array-language benchmark.
--
-- One time step = velocity/position update, geometry (areas, volumes,
-- density), artificial viscosity, equation of state, energy update,
-- and an explicit heat-conduction sweep.  State fields are read at
-- stencil offsets by the following phase, so they stay allocated;
-- the contraction harvest is the offset-0 work fields (divergence,
-- kinetic energy) and the compiler temporaries of the self-updates.

program simple;

config n := 40;          -- mesh tile edge (per processor)
config steps := 3;
config dt := 0.002;
config gamma := 1.4;
config qcoef := 1.2;     -- artificial viscosity coefficient
config kcond := 0.08;    -- heat conduction coefficient

region R = [1..n, 1..n];
region All = [0..n+1, 0..n+1];

direction north = [-1, 0];
direction south = [1, 0];
direction east  = [0, 1];
direction west  = [0, -1];

-- node-centered kinematics (live)
var X, Y, U, V        : All;
-- zone-centered state (live)
var RHO, P, Q, E, TEMP : All;
-- geometry
var AJ, VOL, AREA, SM  : All;
-- velocity gradients (read at offsets by the viscosity phase)
var DUX, DUY, DVX, DVY : All;
-- sound speed, conductivity
var CS, TK             : All;
-- directional heat fluxes (read at offsets by the energy update)
var HK1, HK2, HK3, HK4 : All;
-- face-centered forces and work fields (read at offsets)
var F1, F2, W1, W2     : All;
-- boundary damping mask and solver coefficients
var BND, ZA, ZB        : All;
-- offset-0 work fields (contract)
var DIV, EK            : All;

scalar etot := 0.0;
scalar qmax := 0.0;

export X, Y, RHO, E, TEMP, etot, qmax;

begin
  -- initial mesh, state and mask
  [All] X := index2 + 0.02 * sin(0.3 * index1);
  [All] Y := index1 + 0.02 * sin(0.3 * index2);
  [All] U := 0.05 * sin(0.11 * index1);
  [All] V := 0.05 * cos(0.13 * index2);
  [All] RHO := 1.0 + 0.1 * cos(0.09 * index1) * cos(0.09 * index2);
  [All] E := 2.0;
  [All] TEMP := 1.0 + 0.2 * sin(0.05 * index1 * index2);
  [All] P := 0.4 * RHO@[0,0] * E@[0,0];
  [All] Q := 0.0;
  [All] SM := 1.0;
  [All] BND := (index1 > 1) * (index1 < n) * (index2 > 1) * (index2 < n);
  [All] ZA := 0.5;
  [All] ZB := 0.5;

  for t := 1 to steps do
    -- forces from pressure + viscosity gradients
    [R] F1 := -(P@east + Q@east - P@west - Q@west) * 0.5 * ZA;
    [R] F2 := -(P@south + Q@south - P@north - Q@north) * 0.5 * ZB;

    -- kinematic update (compiler temporaries contract)
    [R] U := BND * (U + dt * 0.5 * (F1 + F1@west) / max(SM, 0.1));
    [R] V := BND * (V + dt * 0.5 * (F2 + F2@north) / max(SM, 0.1));
    [R] X := X + dt * U;
    [R] Y := Y + dt * V;

    -- geometry of the moved mesh
    [R] AJ := (X@east - X@west) * (Y@south - Y@north)
            - (X@south - X@north) * (Y@east - Y@west);
    [R] AREA := 0.25 * abs(AJ) + 0.01;
    [R] VOL := AREA * 1.0;
    [R] RHO := SM / max(VOL, 0.01);

    -- velocity gradients and divergence
    [R] DUX := 0.5 * (U@east - U@west);
    [R] DUY := 0.5 * (U@south - U@north);
    [R] DVX := 0.5 * (V@east - V@west);
    [R] DVY := 0.5 * (V@south - V@north);
    [R] DIV := DUX + DVY;
    [R] CS := sqrt(gamma * max(P, 0.01) / max(RHO, 0.01));

    -- artificial viscosity (quadratic in compression)
    [R] Q := select(DIV < 0.0,
                    qcoef * RHO * (DIV * DIV * AREA + 0.1 * CS@east * abs(DUX@east - DUX@west)
                                   + 0.05 * abs(DUY@south - DVX@north)),
                    0.0);

    -- energy and equation of state
    [R] EK := 0.5 * (U * U + V * V);
    [R] W1 := P * DIV + Q * min(DIV, 0.0);
    [R] E := E - dt * (W1 + 0.02 * (W1@east - W1@west)) / max(SM, 0.1) + 0.001 * EK;
    [R] P := (gamma - 1.0) * RHO * E;

    -- heat conduction: conductivity, directional fluxes, update
    [R] TK := kcond * (1.0 + 0.5 * TEMP);
    [R] HK1 := 0.5 * (TK + TK@east) * (TEMP@east - TEMP);
    [R] HK2 := 0.5 * (TK + TK@west) * (TEMP@west - TEMP);
    [R] HK3 := 0.5 * (TK + TK@south) * (TEMP@south - TEMP);
    [R] HK4 := 0.5 * (TK + TK@north) * (TEMP@north - TEMP);
    [R] TEMP := TEMP + dt * (HK1@west + HK2@east + HK3@north + HK4@south
                             + HK1 + HK2 + HK3 + HK4) * 0.5
              + 0.01 * W2;
    [R] W2 := 0.2 * (TEMP@east + TEMP@west) - 0.4 * TEMP;
  end;

  etot := +<< R (E + 0.5 * (U * U + V * V));
  qmax := max<< R Q;
end.
