-- Tomcatv: vectorized mesh generation (SPEC CFP95), restructured for
-- an array language the way the ZPL port was.
--
-- Each step computes mesh derivatives and residuals, forms the
-- tridiagonal coefficients, and relaxes the system.  The paper's
-- Figure 1 fragment (the tridiagonal multiplier R contracting to a
-- scalar) appears here as the R / D statements in the solver block:
-- fusing them requires carrying the anti dependence on D by reversing
-- the row loop, after which R contracts.
--
-- The original's sequential row recurrence is replaced by a fixed
-- number of damped relaxation sweeps (an array-language-friendly
-- restructuring; see DESIGN.md substitutions).
--
-- Static arrays: 15 user + 4 compiler temporaries = 19 (paper: 19,
-- 4 compiler / 15 user).  After c2: X, Y, RX, RY, D, AA, DD remain
-- (paper: 7).

program tomcatv;

config n := 48;          -- mesh tile edge (per processor)
config steps := 3;       -- time steps
config relax := 0.0462;  -- relaxation factor
config eps := 0.5;       -- diagonal regularization

region R = [1..n, 1..n];
region All = [0..n+1, 0..n+1];

direction north = [-1, 0];
direction south = [1, 0];
direction east  = [0, 1];
direction west  = [0, -1];

var X, Y           : All;   -- mesh coordinates (live)
var XX, YX         : All;   -- xi-derivatives
var XY, YY         : All;   -- eta-derivatives
var PXX, QYY       : All;   -- metric coefficients
var AA, DD         : All;   -- tridiagonal coefficients
var RX, RY         : All;   -- residuals
var R_             : All;   -- multiplier (the paper's Figure 1 "R")
var D              : All;   -- diagonal estimate
var ERRV           : All;   -- per-point error measure

scalar err := 0.0;

export X, Y, err;

begin
  -- initial algebraic mesh
  [All] X := index2 + 0.1 * sin(0.2 * index1);
  [All] Y := index1 + 0.1 * sin(0.2 * index2);
  [All] D := 1.0;
  [All] AA := -eps;
  [All] DD := eps;

  for t := 1 to steps do
    -- derivatives of the current mesh
    [R] XX := 0.5 * (X@east - X@west);
    [R] YX := 0.5 * (Y@east - Y@west);
    [R] XY := 0.5 * (X@south - X@north);
    [R] YY := 0.5 * (Y@south - Y@north);
    [R] PXX := XX * XX + YX * YX;
    [R] QYY := XY * XY + YY * YY;
    [R] AA := -(PXX + QYY);
    [R] DD := 2.0 * (PXX + QYY) + eps;
    [R] RX := PXX * (X@east + X@west - 2.0 * X)
            + QYY * (X@south + X@north - 2.0 * X)
            - 0.25 * (XX * XY + YX * YY) * (X@[-1,-1] + X@[1,1] - X@[-1,1] - X@[1,-1]);
    [R] RY := PXX * (Y@east + Y@west - 2.0 * Y)
            + QYY * (Y@south + Y@north - 2.0 * Y)
            - 0.25 * (XX * XY + YX * YY) * (Y@[-1,-1] + Y@[1,1] - Y@[-1,1] - Y@[1,-1]);

    -- relaxation sweep on the tridiagonal system (Figure 1 shape):
    -- R_ contracts to a scalar once its statement fuses with the D
    -- update, which requires reversing the loop over dimension 1.
    [R] R_ := AA * D@north;
    [R] D := 1.0 / max(DD - AA@north * R_, eps);
    [R] RX := RX - RX@north * R_;
    [R] RY := RY - RY@north * R_;

    -- move the mesh
    [R] X := X + relax * RX * D;
    [R] Y := Y + relax * RY * D;
  end;

  [R] ERRV := abs(RX) + abs(RY);
  err := max<< R ERRV;
end.
