-- SP: scalar pentadiagonal solver (NAS parallel benchmarks), adapted
-- to two dimensions.
--
-- Five coupled fields are advanced by an ADI-style scheme: an
-- auxiliary-variable phase (inverse density, velocities, source
-- terms), a right-hand-side phase (second-difference stencils), and a
-- line-relaxation update phase with pentadiagonal coefficients.  The
-- full NPB SP declares 181 static arrays across dozens of routines;
-- this kernel models the paper's *dynamic* working set (Figure 8:
-- 23 live arrays before contraction, 17 after).  The contraction
-- opportunities are the offset-0 source term SQ and the five
-- compiler temporaries of the field updates; everything else is kept
-- live by genuinely loop-carried stencil reads — which is exactly the
-- paper's point about SP wanting contraction to *lower-dimensional*
-- arrays (§5.2), reproduced by the c2+p extension bench.

program sp;

config n := 40;          -- tile edge (per processor)
config steps := 3;
config tau := 0.015;
config dx := 0.20;
config dy := 0.20;

region R = [1..n, 1..n];
region All = [0..n+1, 0..n+1];

direction north = [-1, 0];
direction south = [1, 0];
direction east  = [0, 1];
direction west  = [0, -1];

var U1, U2, U3, U4, U5      : All;   -- density, momenta, scalar, energy
var RHS1, RHS2, RHS3, RHS4, RHS5 : All;
var RHOI, WS, QS            : All;   -- auxiliary fields
var LA, LB, LC              : All;   -- pentadiagonal coefficients
var SQ                      : All;   -- kinetic source (contracts)
var DTV                     : All;   -- local time-step field

scalar rnorm := 0.0;

export U1, U2, U3, U4, U5, rnorm;

begin
  -- initial state: smooth transonic-ish profile
  [All] U1 := 1.0 + 0.02 * sin(0.13 * index1) * cos(0.11 * index2);
  [All] U2 := 0.40 * U1@[0,0] + 0.01 * sin(0.07 * index2);
  [All] U3 := 0.30 * U1@[0,0] - 0.01 * cos(0.05 * index1);
  [All] U4 := 0.10;
  [All] U5 := 2.5 + 0.25 * (U2@[0,0] * U2@[0,0] + U3@[0,0] * U3@[0,0]);
  [All] DTV := tau * (1.0 + 0.1 * sin(0.21 * index1 + 0.17 * index2));

  for t := 1 to steps do
    -- auxiliary variables
    [R] RHOI := 1.0 / max(U1, 0.05);
    [R] WS := U2 * RHOI;
    [R] QS := U3 * RHOI;
    [R] SQ := 0.5 * (U2 * U2 + U3 * U3) * RHOI;

    -- right-hand sides: central second differences plus advective
    -- terms; RHOI is read at an offset by the viscous correction, so
    -- it stays allocated
    [R] RHS1 := dx * (U1@east - 2.0 * U1 + U1@west)
              + dy * (U1@north - 2.0 * U1 + U1@south)
              - 0.5 * (WS@east - WS@west) - 0.5 * (QS@north - QS@south);
    [R] RHS2 := dx * (U2@east - 2.0 * U2 + U2@west)
              + dy * (U2@north - 2.0 * U2 + U2@south)
              - WS * 0.5 * (WS@east - WS@west) + 0.1 * (RHOI@east - RHOI@west)
              - 0.05 * SQ;
    [R] RHS3 := dx * (U3@east - 2.0 * U3 + U3@west)
              + dy * (U3@north - 2.0 * U3 + U3@south)
              - QS * 0.5 * (QS@north - QS@south) + 0.1 * (RHOI@north - RHOI@south)
              - 0.05 * SQ;
    [R] RHS4 := dx * (U4@east - 2.0 * U4 + U4@west)
              + dy * (U4@north - 2.0 * U4 + U4@south)
              - 0.5 * (WS * (U4@east - U4@west) + QS * (U4@north - U4@south));
    [R] RHS5 := dx * (U5@east - 2.0 * U5 + U5@west)
              + dy * (U5@north - 2.0 * U5 + U5@south)
              - 0.5 * (WS@east * U5@east - WS@west * U5@west)
              - 0.5 * (QS@north * U5@north - QS@south * U5@south)
              + 0.1 * SQ;

    -- pentadiagonal line coefficients; LA and LC are read at offsets
    -- by the relaxation, LB at an offset by the energy update
    [R] LA := -0.5 * (WS@north + 0.05);
    [R] LB := 1.0 + 0.5 * abs(WS) + 0.5 * abs(QS);
    [R] LC := -0.5 * (WS@south + 0.05);

    -- relaxed forward-sweep update of each field: the self reference
    -- is one-sided (@north only), so the inserted compiler temporary
    -- fuses with its copy-back under a reversed row loop and
    -- contracts — five temporaries eliminated
    [R] U1 := U1 + DTV * (RHS1 - 0.1 * (LA@north * U1@north + LC@south * RHS1@south)) / LB;
    [R] U2 := U2 + DTV * (RHS2 - 0.1 * (LA@north * U2@north + LC@south * RHS2@south)) / LB;
    [R] U3 := U3 + DTV * (RHS3 - 0.1 * (LA@north * U3@north + LC@south * RHS3@south)) / LB;
    [R] U4 := U4 + DTV * (RHS4 - 0.1 * (LA@north * U4@north + LC@south * RHS4@south)) / LB;
    [R] U5 := U5 + DTV * (RHS5 - 0.1 * (LA@north * U5@north + LC@south * RHS5@south)) / LB@north;
  end;

  rnorm := +<< R (abs(RHS1) + abs(RHS2) + abs(RHS3) + abs(RHS4) + abs(RHS5));
end.
