-- EP: the NAS "embarrassingly parallel" kernel.
--
-- Generates pairs of uniform deviates, transforms the accepted pairs
-- into Gaussian deviates (Box-Muller), and tallies them into annuli
-- by maximum coordinate.  Every array is dead once the reductions have
-- been taken, so array-level fusion + contraction + reduction fusion
-- eliminate ALL 22 arrays (paper Figure 7: EP 22 -> 0).
--
-- Per-element randomness is the pure function hashrand(.), so results
-- are independent of iteration order and bit-reproducible.

program ep;

config n := 4096;        -- pairs per processor

region R = [1..n];

var U1, U2          : R;   -- uniform deviates
var V1, V2          : R;   -- scaled to (-1, 1)
var S               : R;   -- radius^2
var ACC             : R;   -- acceptance mask
var SL, SF          : R;   -- Box-Muller factors
var GX, GY          : R;   -- Gaussian deviates
var AX, AY, MX      : R;   -- magnitudes
var B0, B1, B2, B3, B4, B5, B6, B7, B8 : R;   -- annulus masks

scalar cnt := 0.0;       -- accepted pairs
scalar sx := 0.0;        -- sum of X deviates
scalar sy := 0.0;        -- sum of Y deviates
scalar q0 := 0.0;
scalar q1 := 0.0;
scalar q2 := 0.0;
scalar q3 := 0.0;
scalar q4 := 0.0;
scalar q5 := 0.0;
scalar q6 := 0.0;
scalar q7 := 0.0;
scalar q8 := 0.0;

export cnt, sx, sy, q0, q1, q2, q3, q4, q5, q6, q7, q8;

begin
  [R] U1 := hashrand(index1);
  [R] U2 := hashrand(index1 + n);
  [R] V1 := 2.0 * U1 - 1.0;
  [R] V2 := 2.0 * U2 - 1.0;
  [R] S  := V1 * V1 + V2 * V2;
  [R] ACC := (S < 1.0) && (S > 0.0);
  [R] SL := log(max(S, 1e-30));
  [R] SF := sqrt(-2.0 * SL / max(S, 1e-30));
  [R] GX := V1 * SF * ACC;
  [R] GY := V2 * SF * ACC;
  [R] AX := abs(GX);
  [R] AY := abs(GY);
  [R] MX := max(AX, AY);
  [R] B0 := ACC * (MX >= 0.0) * (MX < 1.0);
  [R] B1 := ACC * (MX >= 1.0) * (MX < 2.0);
  [R] B2 := ACC * (MX >= 2.0) * (MX < 3.0);
  [R] B3 := ACC * (MX >= 3.0) * (MX < 4.0);
  [R] B4 := ACC * (MX >= 4.0) * (MX < 5.0);
  [R] B5 := ACC * (MX >= 5.0) * (MX < 6.0);
  [R] B6 := ACC * (MX >= 6.0) * (MX < 7.0);
  [R] B7 := ACC * (MX >= 7.0) * (MX < 8.0);
  [R] B8 := ACC * (MX >= 8.0) * (MX < 9.0);
  cnt := +<< R ACC;
  sx  := +<< R GX;
  sy  := +<< R GY;
  q0  := +<< R B0;
  q1  := +<< R B1;
  q2  := +<< R B2;
  q3  := +<< R B3;
  q4  := +<< R B4;
  q5  := +<< R B5;
  q6  := +<< R B6;
  q7  := +<< R B7;
  q8  := +<< R B8;
end.
