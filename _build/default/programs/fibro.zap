-- Fibro: fibroblast / extracellular-matrix mechanics (after Dikaiakos,
-- Lin, Manoussaki & Woodward's ZPL biology codes).
--
-- Fibroblasts diffuse and migrate chemotactically through a collagen
-- matrix, remodel it (production, degradation, realignment), and
-- deform it mechanically (traction -> stress -> displacement).  The
-- code is written in the double-buffered style of the original ZPL
-- application: no statement reads the array it writes, so no compiler
-- temporaries are inserted (paper Figure 7: Fibro 49 arrays, 0
-- compiler / 49 user).  The contraction harvest is the large layer of
-- offset-0 coefficient and gradient fields between the state arrays.

program fibro;

config n := 40;          -- tissue tile edge (per processor)
config steps := 3;
config dt := 0.05;
config dN := 0.30;       -- fibroblast diffusivity
config chi := 0.25;      -- chemotaxis coefficient
config kpc := 0.06;      -- collagen production
config kdc := 0.03;      -- collagen degradation
config kpf := 0.05;      -- fibronectin production
config drag := 2.0;      -- matrix drag

region R = [1..n, 1..n];
region All = [0..n+1, 0..n+1];

direction north = [-1, 0];
direction south = [1, 0];
direction east  = [0, 1];
direction west  = [0, -1];

-- state fields (live across steps)
var N, C, F, TH, U, V          : All;
-- double buffers for the state updates
var NN, CN, FN, THN, UN, VN    : All;
-- transport fluxes (read at offsets by the divergence statements)
var FLX, FLY, QX, QY, HX, HY   : All;
-- matrix stress tensor (read at offsets by the force statements)
var SXX, SYY, SXY              : All;
-- rotation/torque and displacement gradients (offset-read)
var ROT, GU, GV                : All;
-- environment (set up once, read every step)
var BMASK, XI, PHI             : All;
-- offset-0 coefficient and gradient layer (contracts under c2)
var CH, SAT, MIT, DEG, PRODC, PRODF, SPD : All;
var GNX, GNY, GCX, GCY, GFX, GFY         : All;
var EPSXX, EPSYY, EPSXY                  : All;
var TRC, STF, FU, FV, ALN, ANG           : All;

scalar ncells := 0.0;
scalar cmass := 0.0;
scalar umax := 0.0;

export N, C, F, ncells, cmass, umax;

begin
  -- a wound at the center of the tile: few cells, damaged matrix
  [All] N := 0.2 + 0.8 / (1.0 + 0.01 * (index1 - n / 2) * (index1 - n / 2)
                               + 0.01 * (index2 - n / 2) * (index2 - n / 2));
  [All] C := 0.8 - 0.5 * (index1 > n / 4) * (index1 < 3 * n / 4)
                       * (index2 > n / 4) * (index2 < 3 * n / 4);
  [All] F := 0.3 + 0.1 * sin(0.2 * index1) * sin(0.2 * index2);
  [All] TH := 0.3 * sin(0.1 * index1 + 0.2 * index2);
  [All] U := 0.0;
  [All] V := 0.0;
  [All] BMASK := (index1 > 1) * (index1 < n) * (index2 > 1) * (index2 < n);
  [All] XI := 0.5 + 0.5 * hashrand(index1 * 1000.0 + index2);
  [All] PHI := 0.6 + 0.2 * cos(0.15 * index1) * cos(0.15 * index2);

  for t := 1 to steps do
    -- coefficient layer: everything here is consumed at offset 0 and
    -- contracts once fused with its consumers
    [R] SAT := 1.0 - N / 2.0;
    [R] MIT := 0.04 * N * SAT * F;
    [R] CH := chi / ((1.0 + 2.0 * F) * (1.0 + 2.0 * F));
    [R] SPD := dN * XI / (0.2 + 0.8 * C);
    [R] DEG := kdc * N * C;
    [R] PRODC := kpc * N * (1.0 - C);
    [R] PRODF := kpf * N * (1.0 - F);

    -- gradients of the state fields
    [R] GNX := 0.5 * (N@east - N@west);
    [R] GNY := 0.5 * (N@south - N@north);
    [R] GCX := 0.5 * (C@east - C@west);
    [R] GCY := 0.5 * (C@south - C@north);
    [R] GFX := 0.5 * (F@east - F@west);
    [R] GFY := 0.5 * (F@south - F@north);

    -- cell flux: diffusion down own gradient, chemotaxis up the
    -- fibronectin gradient, haptotaxis along collagen
    [R] FLX := SPD * GNX - CH * N * GFX - 0.1 * N * GCX;
    [R] FLY := SPD * GNY - CH * N * GFY - 0.1 * N * GCY;

    -- collagen and fibronectin advect with the matrix
    [R] QX := C * 0.5 * (UN@east - UN@west) / dt;
    [R] QY := C * 0.5 * (VN@south - VN@north) / dt;
    [R] HX := F * 0.5 * (UN@east - UN@west) / dt;
    [R] HY := F * 0.5 * (VN@south - VN@north) / dt;

    -- matrix mechanics: strain, stiffness, traction, stress
    [R] EPSXX := 0.5 * (U@east - U@west);
    [R] EPSYY := 0.5 * (V@south - V@north);
    [R] EPSXY := 0.25 * (U@south - U@north + V@east - V@west);
    [R] STF := (0.5 + C) * PHI;
    [R] TRC := 0.4 * N * C / (1.0 + 0.3 * N * N);
    [R] SXX := STF * (EPSXX + 0.3 * EPSYY) + TRC;
    [R] SYY := STF * (EPSYY + 0.3 * EPSXX) + TRC;
    [R] SXY := STF * EPSXY;

    -- force balance and displacement update (drag-dominated)
    [R] FU := 0.5 * (SXX@east - SXX@west) + 0.5 * (SXY@south - SXY@north);
    [R] FV := 0.5 * (SYY@south - SYY@north) + 0.5 * (SXY@east - SXY@west);
    [R] UN := BMASK * (U + dt * FU / drag);
    [R] VN := BMASK * (V + dt * FV / drag);

    -- fiber realignment toward the local strain axis
    [R] GU := 0.5 * (U@east - U@west);
    [R] GV := 0.5 * (V@south - V@north);
    [R] ROT := 0.5 * (GU@south - GV@east);
    [R] ANG := TH - 0.5 * (ROT@east + ROT@west);
    [R] ALN := 0.1 * N * (1.0 - C) * XI;
    [R] THN := TH - dt * (ANG * ALN);

    -- state updates from flux divergences and kinetics
    [R] NN := BMASK * (N + dt * (0.5 * (FLX@east - FLX@west)
                               + 0.5 * (FLY@south - FLY@north)
                               + MIT - 0.01 * N));
    [R] CN := C + dt * (PRODC - DEG - 0.5 * (QX@east - QX@west)
                                    - 0.5 * (QY@south - QY@north));
    [R] FN := F + dt * (PRODF - 0.02 * F - 0.5 * (HX@east - HX@west)
                                         - 0.5 * (HY@south - HY@north));

    -- commit the double buffers, with a touch of diffusive smoothing
    -- for numerical stability (which also keeps the buffers live at
    -- stencil offsets, as in the original double-buffered code)
    [R] N := 0.96 * NN + 0.01 * (NN@north + NN@south + NN@east + NN@west);
    [R] C := 0.96 * CN + 0.01 * (CN@north + CN@south + CN@east + CN@west);
    [R] F := 0.96 * FN + 0.01 * (FN@north + FN@south + FN@east + FN@west);
    [R] TH := 0.96 * THN + 0.01 * (THN@north + THN@south + THN@east + THN@west);
    [R] U := UN;
    [R] V := VN;
  end;

  ncells := +<< R N;
  cmass := +<< R C;
  umax := max<< R abs(U) + abs(V);
end.
