-- adi3d: a rank-3 alternating-direction implicit sweep (extra
-- benchmark beyond the paper's six; exercises 3-dimensional regions,
-- loop structure discovery in three dimensions, and the 3-D processor
-- grid in the communication model).
--
-- Each step sweeps the field along one axis after another with a
-- one-sided update (the inserted compiler temporaries fuse under a
-- reversed loop over the swept dimension and contract), then relaxes
-- with a 7-point stencil through a user temporary.

program adi3d;

config n := 12;          -- cubical tile edge (per processor)
config steps := 2;
config mu := 0.2;

region R = [1..n, 1..n, 1..n];
region All = [0..n+1, 0..n+1, 0..n+1];

direction up    = [-1, 0, 0];
direction north = [0, -1, 0];
direction west  = [0, 0, -1];

var U          : All;    -- the field (live)
var RHS        : All;    -- stencil residual (offset-read)
var COEF       : All;    -- spatially varying coefficient
var W          : All;    -- offset-0 work field (contracts)

scalar unorm := 0.0;

export U, unorm;

begin
  [All] U := sin(0.4 * index1) + cos(0.3 * index2) * sin(0.2 * index3);
  [All] COEF := 1.0 + 0.1 * cos(0.11 * index1 * index2 + 0.07 * index3);

  for t := 1 to steps do
    -- one-sided sweeps along each axis in turn
    [R] U := U + mu * COEF * (U@up - U);
    [R] U := U + mu * COEF * (U@north - U);
    [R] U := U + mu * COEF * (U@west - U);

    -- 7-point residual, then a damped correction through W
    [R] RHS := COEF * (U@[1,0,0] + U@[-1,0,0] + U@[0,1,0] + U@[0,-1,0]
                     + U@[0,0,1] + U@[0,0,-1] - 6.0 * U);
    [R] W := RHS * RHS;
    [R] U := U + 0.05 * RHS@[0,0,1] - 0.001 * W;
  end;

  unorm := +<< R abs(U);
end.
