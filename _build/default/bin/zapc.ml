(* zapc — the zap array-language compiler driver.

   Compiles a zap program (a file, or a built-in benchmark via
   --bench), applies the requested optimization level, and can dump
   the array IR, the fusion/contraction plan, or the generated scalar
   code; run the program through the instrumented interpreter; and
   report modeled performance on one of the paper's machines. *)

open Cmdliner

let read_program bench file config tile =
  match (bench, file) with
  | Some name, None -> (
      match Suite.by_name name with
      | Some b -> Suite.program ?tile ~config b
      | None ->
          Printf.eprintf "unknown benchmark %S (have: %s)\n" name
            (String.concat ", " (List.map (fun b -> b.Suite.name) Suite.all));
          exit 2)
  | None, Some path ->
      let config =
        match tile with Some t -> ("n", float_of_int t) :: config | None -> config
      in
      Zap.Elaborate.compile_file ~config path
  | Some _, Some _ ->
      prerr_endline "give either a file or --bench, not both";
      exit 2
  | None, None ->
      prerr_endline "nothing to compile: give a file or --bench NAME";
      exit 2

let parse_config kvs =
  List.map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i ->
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          (k, float_of_string v)
      | None ->
          Printf.eprintf "bad --config %S (want name=value)\n" kv;
          exit 2)
    kvs

let dump_plan (c : Compilers.Driver.compiled) =
  List.iteri
    (fun i (bp : Sir.Scalarize.block_plan) ->
      Format.printf "--- block %d ---@." i;
      Format.printf "%a@." Core.Partition.pp bp.Sir.Scalarize.partition;
      List.iter
        (fun (x, shape) ->
          Format.printf "contract %s%s@." x
            (match shape with
            | Core.Contraction.Scalar -> " -> scalar"
            | Core.Contraction.Keep_dims keep ->
                Printf.sprintf " -> dims kept: %s"
                  (String.concat ","
                     (List.filteri (fun _ k -> k) (Array.to_list keep)
                     |> List.mapi (fun i _ -> string_of_int (i + 1))))))
        bp.Sir.Scalarize.contracted;
      List.iter
        (fun (ri, rep) ->
          Format.printf "reduction %d fused into cluster P%d@." ri rep)
        bp.Sir.Scalarize.absorbed)
    c.Compilers.Driver.plan

let main bench file level config tile merge simplify dump_ir dump_plan_f
    dump_c emit_c run machine procs =
  let config = parse_config config in
  let prog = read_program bench file config tile in
  let prog =
    if merge then begin
      let prog', gone = Core.Merge.run prog in
      if gone <> [] then
        Printf.printf "statement merge eliminated: %s\n"
          (String.concat ", " gone);
      prog'
    end
    else prog
  in
  let level =
    match Compilers.Driver.level_of_name level with
    | Some l -> l
    | None ->
        Printf.eprintf "unknown level %S\n" level;
        exit 2
  in
  let c = Compilers.Driver.compile ~level prog in
  let c =
    if simplify then
      { c with Compilers.Driver.code = Sir.Simplify.program c.Compilers.Driver.code }
    else c
  in
  if dump_ir then Format.printf "%a@." Ir.Prog.pp prog;
  if dump_plan_f then dump_plan c;
  if dump_c then Format.printf "%a@." Sir.Code.pp_c c.Compilers.Driver.code;
  (match emit_c with
  | Some path ->
      let oc = open_out path in
      output_string oc (Sir.Emit_c.to_string c.Compilers.Driver.code);
      close_out oc;
      Printf.printf "wrote %s (compile with: cc -O2 %s -lm)\n" path path
  | None -> ());
  let nc, nu = Compilers.Driver.contracted_counts c in
  Printf.printf
    "%s @ %s: %d statements-of-arrays, contracted %d (%d compiler / %d \
     user), %d allocations remain, %d bytes\n"
    prog.Ir.Prog.name
    (Compilers.Driver.level_name level)
    (List.length prog.Ir.Prog.arrays)
    (nc + nu) nc nu
    (Compilers.Driver.remaining_arrays c)
    (Exec.Interp.footprint_bytes c.Compilers.Driver.code);
  if run then begin
    let m =
      match String.lowercase_ascii machine with
      | "t3e" -> Machine.t3e
      | "sp2" | "sp-2" -> Machine.sp2
      | "paragon" -> Machine.paragon
      | other ->
          Printf.eprintf "unknown machine %S (t3e|sp2|paragon)\n" other;
          exit 2
    in
    let cfg = { Comm.Perf.machine = m; procs; comm = Comm.Model.all_on } in
    let r = Comm.Perf.measure cfg c in
    Printf.printf
      "run on %s x%d: time %.3f ms (comp %.3f, comm %.3f)\n\
      \  flops %d  loads %d  stores %d  L1 miss %.2f%%%s\n\
      \  messages %d (%d bytes)  checksum %s\n"
      m.Machine.name procs
      (r.Comm.Perf.time_ns /. 1e6)
      (r.Comm.Perf.comp_ns /. 1e6)
      (r.Comm.Perf.comm_ns /. 1e6)
      r.Comm.Perf.flops r.Comm.Perf.loads r.Comm.Perf.stores
      (100.0 *. Cachesim.Cache.miss_rate r.Comm.Perf.l1)
      (match r.Comm.Perf.l2 with
      | Some l2 ->
          Printf.sprintf "  L2 miss %.2f%%"
            (100.0 *. Cachesim.Cache.miss_rate l2)
      | None -> "")
      r.Comm.Perf.messages r.Comm.Perf.msg_bytes r.Comm.Perf.checksum
  end

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"NAME" ~doc:"Compile a built-in benchmark.")

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.zap")

let level_arg =
  Arg.(
    value & opt string "c2+f3"
    & info [ "level"; "O" ] ~docv:"LEVEL"
        ~doc:
          "Optimization level: baseline, f1, c1, f2, f3, c2, c2+f3, \
           c2+f4, or c2+p.")

let config_arg =
  Arg.(
    value & opt_all string []
    & info [ "config"; "c" ] ~docv:"NAME=VALUE"
        ~doc:"Override a config constant (repeatable).")

let tile_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tile" ] ~docv:"N" ~doc:"Override the tile-edge config constant.")

let merge_arg =
  Arg.(
    value & flag
    & info [ "merge" ]
        ~doc:
          "Run statement merge (array operation synthesis) before the            optimizer.")

let simplify_arg =
  Arg.(
    value & flag
    & info [ "simplify" ]
        ~doc:
          "Run the model scalar back end (constant folding + CSE) on the            generated code.")

let dump_ir_arg =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the array-level IR.")

let dump_plan_arg =
  Arg.(
    value & flag
    & info [ "dump-plan" ]
        ~doc:"Print the fusion partition and contraction decisions.")

let dump_c_arg =
  Arg.(
    value & flag
    & info [ "dump-c" ] ~doc:"Print the generated scalar code as C.")

let emit_c_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-c" ] ~docv:"FILE.c"
        ~doc:
          "Write a complete, runnable C translation unit that prints the            result digest (the differential-test back end).")

let run_arg =
  Arg.(
    value & flag
    & info [ "run" ] ~doc:"Execute and report modeled performance.")

let machine_arg =
  Arg.(
    value & opt string "t3e"
    & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc:"t3e, sp2 or paragon.")

let procs_arg =
  Arg.(value & opt int 1 & info [ "procs"; "p" ] ~docv:"P" ~doc:"Processors.")

let cmd =
  let doc =
    "array-level fusion and contraction compiler (PLDI'98 reproduction)"
  in
  Cmd.v
    (Cmd.info "zapc" ~version:"1.0" ~doc)
    Term.(
      const main $ bench_arg $ file_arg $ level_arg $ config_arg $ tile_arg
      $ merge_arg $ simplify_arg $ dump_ir_arg $ dump_plan_arg $ dump_c_arg
      $ emit_c_arg $ run_arg $ machine_arg $ procs_arg)

let () = exit (Cmd.eval cmd)
