(* The Figure 5 fragment (8) trade-off, end to end: a compiler that
   contracts compiler temporaries separately (Cray-style) eliminates
   one array where the integrated greedy strategy eliminates two.

     dune exec examples/tradeoff.exe                                *)

let () =
  let frag =
    List.find (fun f -> f.Suite.Fragments.id = 8) Suite.Fragments.all
  in
  print_endline frag.Suite.Fragments.source;
  let prog, probe = Suite.Fragments.block frag in
  Format.printf "probe block dependences:@.%a@.@."
    Core.Asdg.pp
    (Core.Asdg.build probe);
  List.iter
    (fun (caps : Compilers.Vendors.caps) ->
      let r = Compilers.Vendors.optimize_block caps prog probe in
      Format.printf "%-20s contracts {%s}: %s@."
        caps.Compilers.Vendors.vname
        (String.concat ", " r.Compilers.Vendors.contracted)
        (if Suite.Fragments.passes frag r then "both user temporaries gone"
         else "suboptimal"))
    Compilers.Vendors.all
