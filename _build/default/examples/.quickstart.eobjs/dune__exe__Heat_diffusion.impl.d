examples/heat_diffusion.ml: Cachesim Comm Compilers Core Expr Format Ir List Machine Nstmt Prog Region Support
