examples/quickstart.ml: Compilers Exec Format Ir List Sir String Zap
