examples/quickstart.mli:
