examples/tomcatv_explore.mli:
