examples/tomcatv_explore.ml: Comm Compilers Core Format Ir List Machine Sir Suite Support
