examples/tradeoff.ml: Compilers Core Format List String Suite
