examples/tradeoff.mli:
