#!/bin/sh
# zapd CI smoke: start the daemon, replay a tiny suite twice through
# zapc --connect, assert the second pass is served from the plan cache
# (>= 90% hits, zero planner searches) with byte-identical responses,
# then shut down cleanly.
set -eu

ZAPD=${ZAPD:-_build/default/bin/zapd.exe}
ZAPC=${ZAPC:-_build/default/bin/zapc.exe}
SOCK=${SOCK:-zapd-smoke.sock}
WORK=$(mktemp -d)

"$ZAPD" --socket "$SOCK" --jobs 2 &
ZAPD_PID=$!
cleanup() {
  kill "$ZAPD_PID" 2>/dev/null || true
  rm -f "$SOCK"
  rm -rf "$WORK"
}
trap cleanup EXIT

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "zapd did not come up" >&2
    exit 1
  fi
  sleep 0.1
done

# tiny per-processor tiles, greedy and search-planned per benchmark
pass() {
  out=$1
  : > "$out"
  for b in "ep:256" "frac:16" "tomcatv:16"; do
    name=${b%:*}
    tile=${b#*:}
    "$ZAPC" --bench "$name" --tile "$tile" --connect "$SOCK" >> "$out"
    "$ZAPC" --bench "$name" --tile "$tile" --plan search --connect "$SOCK" >> "$out"
  done
}

pass "$WORK/cold.out"
"$ZAPC" --server-stats --connect "$SOCK" > "$WORK/stats-cold.json"
pass "$WORK/warm.out"
"$ZAPC" --server-stats --connect "$SOCK" > "$WORK/stats-warm.json"

# the determinism bar: warm replies are byte-identical to cold ones
diff "$WORK/cold.out" "$WORK/warm.out"

python3 - "$WORK/stats-cold.json" "$WORK/stats-warm.json" <<'EOF'
import json, sys
cold = json.load(open(sys.argv[1]))["stats"]
warm = json.load(open(sys.argv[2]))["stats"]
hits = warm["cache"]["hits"] - cold["cache"]["hits"]
misses = warm["cache"]["misses"] - cold["cache"]["misses"]
plans = warm["plans_computed"] - cold["plans_computed"]
looked = hits + misses
rate = hits / looked if looked else 0.0
print(f"warm pass: {hits} hits / {looked} lookups ({100*rate:.0f}%), "
      f"{plans} planner searches")
assert rate >= 0.9, f"warm hit rate {rate:.2f} < 0.90"
assert plans == 0, f"warm pass re-planned {plans} times"
EOF

"$ZAPC" --shutdown --connect "$SOCK" > /dev/null
wait "$ZAPD_PID"
if [ -S "$SOCK" ]; then
  echo "socket file not removed on shutdown" >&2
  exit 1
fi
trap - EXIT
rm -rf "$WORK"
echo "zapd smoke: ok"
